package experiments

import (
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	r := Table1()
	if !strings.Contains(r.Text, "Lines of Code") || !strings.Contains(r.Text, "Total") {
		t.Fatalf("table1:\n%s", r.Text)
	}
	// The dominant sub-50 bucket and the >1000-line tail must both exist.
	if !strings.Contains(r.Text, "0-50") {
		t.Fatal("missing 0-50 bucket")
	}
	found := false
	for _, line := range strings.Split(r.Text, "\n") {
		if strings.HasPrefix(line, "1") && strings.Contains(line, "-1") { // 1250-1300 etc.
			found = true
		}
	}
	if !found {
		t.Fatalf("missing >1000-line tail:\n%s", r.Text)
	}
}

func TestTable2ExactCounts(t *testing.T) {
	r := Table2()
	for _, want := range []string{"136", "128", "71", "1060", "tg-login1.caltech.teragrid.org"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("table2 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestTable3ListsMachines(t *testing.T) {
	r := Table3()
	for _, want := range []string{"inca.sdsc.edu", "Intel Itanium 2", "this run"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("table3 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestTable4OneHour(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment replay")
	}
	r := Table4(Table4Options{Hours: 1, Seed: 3})
	for _, want := range []string{"0-4 KB", "40-50 KB", "mean", "median", "number of updates",
		"reports received: 1060"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("table4 missing %q:\n%s", want, r.Text)
		}
	}
	if !strings.Contains(r.Text, "steady-state cache size") {
		t.Fatal("missing cache size line")
	}
}

func TestFig4SummaryPage(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment replay")
	}
	dir := t.TempDir()
	r := Fig4(Fig4Options{Seed: 3, HTMLPath: dir + "/fig4.html"})
	for _, want := range []string{"Expanded View of Errors", "globus: unit test",
		"gatekeeper not responding", "pieces of data compared and verified"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("fig4 missing %q:\n%s", want, r.Text)
		}
	}
	foundNote := false
	for _, n := range r.Notes {
		if strings.Contains(n, "HTML rendering written") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatalf("HTML not written: %v", r.Notes)
	}
}

func TestFig6BandwidthSeries(t *testing.T) {
	r := Fig6(Fig6Options{Days: 2, Seed: 3})
	if !strings.Contains(r.Text, "Mbps") || !strings.Contains(r.Text, "*") {
		t.Fatalf("fig6:\n%s", r.Text)
	}
	if !strings.Contains(r.Text, "measurements: 48") {
		t.Fatalf("fig6 measurement count:\n%s", r.Text)
	}
}

func TestFig7UsageHistograms(t *testing.T) {
	if testing.Short() {
		t.Skip("week replay")
	}
	r := Fig7(Fig7Options{Days: 1, Seed: 3})
	for _, want := range []string{"CPU utilization", "Memory utilization", "samples below 2% per CPU",
		"samples below 107 MB", "reporter executions"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("fig7 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestFig8Histogram(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment replay")
	}
	r := Fig8(Fig8Options{Hours: 1, Seed: 3})
	if !strings.Contains(r.Text, "% of reports were smaller than 10 KB") {
		t.Fatalf("fig8:\n%s", r.Text)
	}
}

func TestFig9SmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic workload")
	}
	// A reduced sweep via the cell helper: one small and one large cache.
	r := Fig9(Fig9Options{UpdatesPerCell: 3})
	for _, want := range []string{"0.9 MB", "5.3 MB", "45527", "unpack (ms)"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("fig9 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("nonsense"); err == nil {
		t.Fatal("unknown id accepted")
	}
	r, err := ByID("TABLE2")
	if err != nil || r.ID != "table2" {
		t.Fatalf("ByID: %v %v", r.ID, err)
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "x", Title: "t", Text: "body\n", Notes: []string{"note"}}
	s := r.String()
	for _, want := range []string{"=== X", "body", "Notes:", "note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

func TestFig5OneDay(t *testing.T) {
	if testing.Short() {
		t.Skip("day-long replay")
	}
	r := Fig5(Fig5Options{Days: 1, Seed: 3})
	for _, want := range []string{
		"Grid availability on tg-login1.sdsc.teragrid.org",
		"samples: 144",
		"outside maintenance windows",
	} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("fig5 missing %q:\n%s", want, r.Text)
		}
	}
}
