package experiments

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/loadgen"
	"inca/internal/query"
)

// FeedOptions configures the push-vs-pull consumer scaling experiment
// (DESIGN.md §5h).
type FeedOptions struct {
	// Consumers are the population sizes to sweep (default 1, 16, 256,
	// 1024 — the DiPerF-style scaling axis).
	Consumers []int
	// Window is how long each measured cell runs (default 3s).
	Window time.Duration
	// StoreInterval is the writer's gap between report stores
	// (default 100ms: a busy depot, ~10 changes/sec).
	StoreInterval time.Duration
	// PollInterval is each poller's conditional-GET period (default
	// 200ms — an aggressive dashboard refresh).
	PollInterval time.Duration
}

func (o *FeedOptions) fill() {
	if len(o.Consumers) == 0 {
		o.Consumers = []int{1, 16, 256, 1024}
	}
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.StoreInterval <= 0 {
		o.StoreInterval = 100 * time.Millisecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 200 * time.Millisecond
	}
}

// storeClock records when each branch was last stored, so a consumer
// observing a change can compute its propagation delay. Times are
// recorded before the store commits: a receiver can therefore never see
// a change whose store time is missing, and the measured delay includes
// the commit itself (identically for both modes).
type storeClock struct {
	mu  sync.RWMutex
	at  map[string]time.Time
	seq []time.Time // every store's time, in commit order
}

func (sc *storeClock) mark(id string) {
	sc.mu.Lock()
	now := time.Now()
	sc.at[id] = now
	sc.seq = append(sc.seq, now)
	sc.mu.Unlock()
}

func (sc *storeClock) since(id string) (time.Duration, bool) {
	sc.mu.RLock()
	t, ok := sc.at[id]
	sc.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return time.Since(t), true
}

// newSince returns the store times recorded after index from, plus the
// new high-water index — how a poller attributes one changed body to
// every generation it newly observed.
func (sc *storeClock) newSince(from int) ([]time.Time, int) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	if from >= len(sc.seq) {
		return nil, from
	}
	out := make([]time.Time, len(sc.seq)-from)
	copy(out, sc.seq[from:])
	return out, len(sc.seq)
}

// feedCellResult is one measured (mode, consumers) cell.
type feedCellResult struct {
	Requests      int64   // query-tier HTTP requests, setup included
	ReqPerSec     float64 // Requests normalized by the window
	Deliveries    int64   // change observations across all consumers
	DelivPerSec   float64
	P50, P95, P99 float64 // propagation, microseconds
	Demotions     int64   // subscribers demoted to a fresh snapshot
}

// feedCell runs one population of consumers — "poll" (conditional GETs)
// or "feed" (SSE subscriptions) — against a live depot server over real
// TCP while a writer stores reports at a steady rate, and measures the
// query tier's request load and the store-to-observe propagation delay.
func feedCell(mode string, n int, opt FeedOptions) (feedCellResult, error) {
	d := depot.New(depot.NewIndexedCache())
	defer d.Close()
	sf := query.NewFeed(d, query.FeedOptions{})
	defer sf.Close()
	srv := query.NewServer(d)
	srv.Feed = sf

	var requests atomic.Int64
	h := srv.Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return feedCellResult{}, err
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		h.ServeHTTP(w, r)
	})}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// One shared client: pollers need a deep idle pool to avoid
	// connection churn; subscribers need no request timeout (an SSE
	// stream is a deliberately unbounded response).
	tr := &http.Transport{MaxIdleConns: 2 * n, MaxIdleConnsPerHost: 2 * n}
	defer tr.CloseIdleConnections()
	qc := query.NewClient(base)
	qc.HTTP = &http.Client{Transport: tr}

	// The working set: 64 branches cycled by the writer, so a branch
	// repeats only every ~1.6s — long past any sane propagation delay,
	// keeping the per-branch store clock unambiguous.
	ids := make([]branch.ID, 0, 64)
	for s := 0; s < 8; s++ {
		for p := 0; p < 8; p++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", p, s)))
		}
	}
	data := loadgen.MustPremadeReport(851)
	clock := &storeClock{at: make(map[string]time.Time, len(ids))}

	var (
		deliveries atomic.Int64
		demotions  atomic.Int64
		errOnce    sync.Once
		cellErr    error
		readyWg    sync.WaitGroup
		doneWg     sync.WaitGroup
	)
	fail := func(err error) { errOnce.Do(func() { cellErr = err }) }
	lat := newLatencyTracker(n, 256)
	stop := make(chan struct{})
	var streams []*query.FeedStream

	readyWg.Add(n)
	doneWg.Add(n)
	for w := 0; w < n; w++ {
		switch mode {
		case "feed":
			fs, err := qc.FeedSubscribe("", "", "")
			if err != nil {
				close(stop)
				return feedCellResult{}, err
			}
			streams = append(streams, fs)
			go func(w int, fs *query.FeedStream) {
				defer doneWg.Done()
				ready := false
				for {
					ev, err := fs.Next()
					if err != nil {
						if !ready {
							readyWg.Done()
						}
						return // stream closed at teardown
					}
					switch ev.Type {
					case "snapshot":
						if !ready {
							ready = true
							readyWg.Done()
						} else {
							demotions.Add(1)
						}
					case "change":
						fc, cerr := ev.Change()
						if cerr != nil {
							fail(cerr)
							continue
						}
						if delay, ok := clock.since(fc.Branch); ok {
							lat.observe(w, delay)
							deliveries.Add(1)
						}
					}
				}
			}(w, fs)
		case "poll":
			go func(w int) {
				defer doneWg.Done()
				// Prime the ETag, then poll on a fixed period with a
				// per-worker phase so the population spreads across the
				// interval instead of stampeding.
				_, etag, _, err := qc.CacheConditional("", "")
				readyWg.Done()
				if err != nil {
					fail(err)
					return
				}
				phase := time.Duration(w) * opt.PollInterval / time.Duration(n)
				select {
				case <-time.After(phase):
				case <-stop:
					return
				}
				lastSeen := 0
				for {
					select {
					case <-time.After(opt.PollInterval):
					case <-stop:
						return
					}
					_, newTag, notModified, err := qc.CacheConditional("", etag)
					if err != nil {
						select {
						case <-stop:
						default:
							fail(err)
						}
						return
					}
					if !notModified && newTag != etag {
						etag = newTag
						times, high := clock.newSince(lastSeen)
						lastSeen = high
						for _, t := range times {
							lat.observe(w, time.Since(t))
						}
						deliveries.Add(int64(len(times)))
					}
				}
			}(w)
		default:
			return feedCellResult{}, fmt.Errorf("unknown consumer mode %q", mode)
		}
	}
	readyWg.Wait()

	// Every consumer is attached: run the writer for the window.
	windowStart := time.Now()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-time.After(opt.StoreInterval):
			case <-stop:
				return
			}
			id := ids[i%len(ids)]
			clock.mark(id.String())
			if _, err := d.Store(id, data); err != nil {
				fail(err)
				return
			}
		}
	}()
	time.Sleep(opt.Window)
	close(stop)
	<-writerDone
	for _, fs := range streams {
		fs.Close()
	}
	doneWg.Wait()
	window := time.Since(windowStart)

	if cellErr != nil {
		return feedCellResult{}, cellErr
	}
	p50, p95, p99 := lat.percentiles()
	return feedCellResult{
		Requests:    requests.Load(),
		ReqPerSec:   float64(requests.Load()) / window.Seconds(),
		Deliveries:  deliveries.Load(),
		DelivPerSec: float64(deliveries.Load()) / window.Seconds(),
		P50:         p50, P95: p95, P99: p99,
		Demotions: demotions.Load(),
	}, nil
}

// Feed measures push versus pull consumer scaling over real TCP: N
// conditional pollers against N /feed subscribers at growing N, plotting
// query-tier request rate and store-to-observe propagation delay —
// DiPerF-style, the service's delivered performance as the client
// population grows. The acceptance line is the request-rate column: at
// 256+ consumers the feed tier must carry ≥10x fewer requests than the
// polling tier at equal or better propagation delay.
func Feed(opt FeedOptions) Result {
	opt.fill()
	return timed("feed", "Push-scale consumers: change-feed subscribers vs conditional pollers", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-6s %-10s %10s %12s %12s %12s %12s\n",
			"mode", "consumers", "req/s", "observe/s", "p50(ms)", "p95(ms)", "p99(ms)")
		for _, n := range opt.Consumers {
			var cells [2]feedCellResult
			for i, mode := range []string{"poll", "feed"} {
				cell, err := feedCell(mode, n, opt)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				cells[i] = cell
				fmt.Fprintf(&sb, "%-6s %-10d %10.1f %12.1f %12.2f %12.2f %12.2f\n",
					mode, n, cell.ReqPerSec, cell.DelivPerSec, cell.P50/1e3, cell.P95/1e3, cell.P99/1e3)
				cs := cellStats{OpsPerSec: cell.DelivPerSec, P50: cell.P50, P95: cell.P95, P99: cell.P99}
				r.Metrics = append(r.Metrics, cs.metric("propagation", map[string]string{
					"mode": mode, "consumers": fmt.Sprint(n),
				}))
				r.Metrics = append(r.Metrics, Metric{
					Name:      "query-tier-requests",
					Labels:    map[string]string{"mode": mode, "consumers": fmt.Sprint(n)},
					Value:     cell.ReqPerSec,
					ValueUnit: "requests/sec",
				})
				if cell.Demotions > 0 {
					r.Metrics = append(r.Metrics, Metric{
						Name:      "demotions",
						Labels:    map[string]string{"mode": mode, "consumers": fmt.Sprint(n)},
						Value:     float64(cell.Demotions),
						ValueUnit: "snapshot-resyncs",
					})
				}
			}
			ratio := 0.0
			if cells[1].ReqPerSec > 0 {
				ratio = cells[0].ReqPerSec / cells[1].ReqPerSec
			}
			fmt.Fprintf(&sb, "%-6s %-10d %34s\n", "ratio", n, fmt.Sprintf("%.1fx fewer requests via feed", ratio))
			r.Metrics = append(r.Metrics, Metric{
				Name:      "request-reduction",
				Labels:    map[string]string{"consumers": fmt.Sprint(n)},
				Value:     ratio,
				ValueUnit: "x",
			})
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			fmt.Sprintf("writer stores one 851-byte report every %s across 64 branches; each cell runs %s over real loopback TCP", opt.StoreInterval, opt.Window),
			fmt.Sprintf("pollers issue conditional GET /cache every %s (phase-spread); subscribers hold one SSE /feed stream each", opt.PollInterval),
			"req/s counts every HTTP request the query tier served, connection setup included, normalized by the measured window — the feed column is the one-time subscribe cost amortized over the window",
			"propagation is store-to-observe per generation: the clock starts as the writer commits and stops at each consumer's first observation of that generation (feed: its change event; poll: the first changed body after it)",
			"a poll landing inside the writer's commit window can claim one not-yet-visible generation early (that sample undercounts by one poll round trip, in the poll column's favor)",
			"observe/s is first observations across the whole population (DiPerF-style delivered throughput); both modes top out at consumers x generations",
		)
	})
}
