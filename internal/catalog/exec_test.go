package catalog

import (
	"os"
	"os/exec"
	"testing"
	"time"

	"inca/internal/report"
	"inca/internal/reporter"
)

// TestRenderedScriptsAreRunnable executes the rendered version-reporter
// script through /bin/sh via the Exec reporter. On a machine without the
// probed package, the script must still emit a specification-compliant
// *error* report — this is the paper's whole error-reporting contract, and
// it validates that catalog.Script output is genuinely deployable, not
// just line-countable.
func TestRenderedScriptsAreRunnable(t *testing.T) {
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("no sh available")
	}
	_, src, _ := testGrid()
	dir := t.TempDir()
	cases := []struct {
		name string
		r    reporter.Reporter
	}{
		{"version", &VersionReporter{Resource: src, Package: "globus"}},
		{"softenv", &SoftEnvReporter{Resource: src}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := dir + "/" + c.name + ".sh"
			if err := os.WriteFile(path, []byte(Script(c.r)), 0o755); err != nil {
				t.Fatal(err)
			}
			e := &reporter.Exec{
				ReporterName: c.r.Name(),
				Path:         path,
				Interpreter:  "sh",
				Timeout:      20 * time.Second,
			}
			rep := e.Run(&reporter.Context{Hostname: "build-host", Now: time.Now()})
			// The probe fails here (no /usr/teragrid on a build machine),
			// but the failure must be a valid report with a message.
			if rep.Succeeded() {
				t.Logf("unexpectedly succeeded (environment provides the package?)")
			}
			if err := rep.Validate(); err != nil {
				t.Fatalf("script output not spec-compliant: %v", err)
			}
			if !rep.Succeeded() && rep.Footer.ErrorMessage == "" {
				t.Fatal("failure without error message")
			}
			data, err := report.Marshal(rep)
			if err != nil || len(data) == 0 {
				t.Fatalf("marshal: %v", err)
			}
		})
	}
}
