package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"inca/internal/reporter"
)

// Reporter repositories — the deployable form of "automated reporter
// deployment" (paper Section 6): every reporter in a set is rendered to a
// standalone script and written under a directory with a checksummed
// MANIFEST, so a resource can verify its installed reporter tree matches
// what the VO published (and Inca itself can re-verify it periodically,
// closing the loop on software-stack validation for its own tooling).

// ManifestName is the repository index file.
const ManifestName = "MANIFEST"

// scriptFileName derives the on-disk name for a reporter.
func scriptFileName(name string) string {
	return strings.ReplaceAll(name, "/", "_") + ".sh"
}

// WriteRepository renders every reporter into dir and writes the MANIFEST
// (one "sha256  filename  reporter-name  version" line per script, sorted
// by filename). It returns the number of scripts written.
func WriteRepository(dir string, reporters []reporter.Reporter) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	type entry struct {
		file, sum, name, version string
	}
	var entries []entry
	seen := make(map[string]bool)
	for _, r := range reporters {
		file := scriptFileName(r.Name())
		if seen[file] {
			return 0, fmt.Errorf("catalog: duplicate repository entry %s", file)
		}
		seen[file] = true
		script := []byte(Script(r))
		if err := os.WriteFile(filepath.Join(dir, file), script, 0o755); err != nil {
			return 0, err
		}
		sum := sha256.Sum256(script)
		entries = append(entries, entry{
			file: file, sum: hex.EncodeToString(sum[:]), name: r.Name(), version: r.Version(),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].file < entries[j].file })
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%s  %s  %s  %s\n", e.sum, e.file, e.name, e.version)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(sb.String()), 0o644); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// RepositoryProblem describes one verification finding.
type RepositoryProblem struct {
	File   string
	Reason string
}

func (p RepositoryProblem) String() string { return p.File + ": " + p.Reason }

// VerifyRepository checks an installed repository against its MANIFEST:
// missing scripts, checksum mismatches (tampered or locally patched
// reporters), and stray unlisted scripts are all reported. An empty return
// means the tree matches exactly.
func VerifyRepository(dir string) ([]RepositoryProblem, error) {
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("catalog: repository has no readable MANIFEST: %w", err)
	}
	var problems []RepositoryProblem
	listed := make(map[string]bool)
	for i, line := range strings.Split(strings.TrimRight(string(manifest), "\n"), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("catalog: malformed MANIFEST line %d: %q", i+1, line)
		}
		wantSum, file := fields[0], fields[1]
		listed[file] = true
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			problems = append(problems, RepositoryProblem{File: file, Reason: "missing from repository"})
			continue
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != wantSum {
			problems = append(problems, RepositoryProblem{File: file, Reason: "checksum mismatch (modified script)"})
		}
	}
	dirEntries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range dirEntries {
		name := de.Name()
		if de.IsDir() || name == ManifestName {
			continue
		}
		if strings.HasSuffix(name, ".sh") && !listed[name] {
			problems = append(problems, RepositoryProblem{File: name, Reason: "not listed in MANIFEST"})
		}
	}
	sort.Slice(problems, func(i, j int) bool { return problems[i].File < problems[j].File })
	return problems, nil
}

// LoadRepository turns an installed repository into runnable Exec
// reporters, verifying checksums first.
func LoadRepository(dir string) ([]reporter.Reporter, error) {
	problems, err := VerifyRepository(dir)
	if err != nil {
		return nil, err
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("catalog: repository verification failed: %s (and %d more)",
			problems[0], len(problems)-1)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var out []reporter.Reporter
	for _, line := range strings.Split(strings.TrimRight(string(manifest), "\n"), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		version := "1.0"
		if len(fields) >= 4 {
			version = fields[3]
		}
		out = append(out, &reporter.Exec{
			ReporterName:    fields[2],
			ReporterVersion: version,
			Path:            filepath.Join(dir, fields[1]),
			Interpreter:     "/bin/sh",
		})
	}
	return out, nil
}
