package catalog

import (
	"fmt"
	"time"

	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
)

// NetworkTool identifies one of the nonintrusive bandwidth measurement
// tools wrapped by reporters in Section 4.2.
type NetworkTool string

// The three tools the paper deploys.
const (
	Pathload  NetworkTool = "pathload"
	Pathchirp NetworkTool = "pathchirp"
	Spruce    NetworkTool = "spruce"
)

// BandwidthReporter measures available bandwidth from Source to DestHost
// with one of the network tools, emitting exactly the Figure 2 body shape
// (a metric with lowerBound/upperBound statistics).
type BandwidthReporter struct {
	Grid     *gridsim.Grid
	Source   *gridsim.Resource
	DestHost string
	Tool     NetworkTool
}

// Name implements Reporter.
func (b *BandwidthReporter) Name() string {
	return fmt.Sprintf("grid.network.%s.to.%s", b.Tool, b.DestHost)
}

// Version implements Reporter.
func (b *BandwidthReporter) Version() string { return "1.4" }

// Description implements Reporter.
func (b *BandwidthReporter) Description() string {
	return fmt.Sprintf("measures available bandwidth to %s with %s", b.DestHost, b.Tool)
}

// RunDuration implements Timed: probing tools run for minutes, which is
// why their expected-run-time limits matter.
func (b *BandwidthReporter) RunDuration(*reporter.Context) time.Duration {
	switch b.Tool {
	case Pathload:
		return 4 * time.Minute
	case Pathchirp:
		return 2 * time.Minute
	default: // spruce is the quick one
		return 30 * time.Second
	}
}

// Run implements Reporter.
func (b *BandwidthReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(b, ctx)
	if b.Source.InMaintenance(ctx.Now) {
		return rep.Fail("source resource in scheduled maintenance")
	}
	link, ok := b.Grid.Link(b.Source.Host, b.DestHost)
	if !ok {
		return rep.Fail("no route to %s", b.DestHost)
	}
	lower, upper := link.BandwidthAt(ctx.Now)
	// spruce and pathchirp report a single estimate; pathload reports the
	// bound pair exactly as in Figure 2.
	metric := report.Branch("metric", "bandwidth")
	switch b.Tool {
	case Pathload:
		metric.Add(
			report.Branch("statistic", "upperBound",
				report.Leaff("value", "%.2f", upper),
				report.Leaf("units", "Mbps")),
			report.Branch("statistic", "lowerBound",
				report.Leaff("value", "%.2f", lower),
				report.Leaf("units", "Mbps")),
		)
	default:
		metric.Add(report.Branch("statistic", "estimate",
			report.Leaff("value", "%.2f", (lower+upper)/2),
			report.Leaf("units", "Mbps")))
	}
	rep.Body = metric
	return rep
}

// BenchmarkReporter runs a GRASP-style benchmark probe (Section 4.2: "A
// reporter which executes the GRASP benchmarks has been implemented").
type BenchmarkReporter struct {
	Resource *gridsim.Resource
	// Kind selects the probe (e.g. "flops", "membw", "io").
	Kind string
}

// Name implements Reporter.
func (g *BenchmarkReporter) Name() string { return "grid.benchmark.grasp." + g.Kind }

// Version implements Reporter.
func (g *BenchmarkReporter) Version() string { return "0.9" }

// Description implements Reporter.
func (g *BenchmarkReporter) Description() string {
	return fmt.Sprintf("runs the GRASP %s probe", g.Kind)
}

// RunDuration implements Timed.
func (g *BenchmarkReporter) RunDuration(*reporter.Context) time.Duration { return 3 * time.Minute }

// Run implements Reporter.
func (g *BenchmarkReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(g, ctx)
	if g.Resource.InMaintenance(ctx.Now) {
		return rep.Fail("resource in scheduled maintenance")
	}
	score := g.Resource.BenchmarkScore(g.Kind, ctx.Now)
	units := map[string]string{"flops": "GFLOPS", "membw": "GB/s", "io": "MB/s"}[g.Kind]
	if units == "" {
		units = "ops/s"
	}
	rep.Body = report.Branch("metric", g.Kind,
		report.Branch("statistic", "measured",
			report.Leaff("value", "%.3f", score),
			report.Leaf("units", units)),
	)
	return rep
}
