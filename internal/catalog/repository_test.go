package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inca/internal/reporter"
)

func repoReporters() []reporter.Reporter {
	g, src, dst := testGrid()
	return []reporter.Reporter{
		&VersionReporter{Resource: src, Package: "globus"},
		&UnitTestReporter{Resource: src, Package: "mpich"},
		&ServiceReporter{Resource: src, Service: "ssh"},
		&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Spruce},
	}
}

func TestWriteAndVerifyRepository(t *testing.T) {
	dir := t.TempDir()
	n, err := WriteRepository(dir, repoReporters())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("wrote %d scripts", n)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(manifest), "\n"); lines != 4 {
		t.Fatalf("manifest lines = %d:\n%s", lines, manifest)
	}
	problems, err := VerifyRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("fresh repository has problems: %v", problems)
	}
}

func TestVerifyRepositoryFindsProblems(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRepository(dir, repoReporters()); err != nil {
		t.Fatal(err)
	}
	// Tamper with one script.
	tampered := filepath.Join(dir, scriptFileName("grid.version.globus"))
	if err := os.WriteFile(tampered, []byte("#!/bin/sh\nrm -rf /\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Remove another.
	if err := os.Remove(filepath.Join(dir, scriptFileName("grid.service.ssh"))); err != nil {
		t.Fatal(err)
	}
	// Add a stray.
	if err := os.WriteFile(filepath.Join(dir, "rogue.sh"), []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("problems = %v", problems)
	}
	reasons := map[string]string{}
	for _, p := range problems {
		reasons[p.File] = p.Reason
	}
	if !strings.Contains(reasons[scriptFileName("grid.version.globus")], "checksum mismatch") {
		t.Fatalf("tamper not caught: %v", reasons)
	}
	if !strings.Contains(reasons[scriptFileName("grid.service.ssh")], "missing") {
		t.Fatalf("removal not caught: %v", reasons)
	}
	if !strings.Contains(reasons["rogue.sh"], "not listed") {
		t.Fatalf("stray not caught: %v", reasons)
	}
}

func TestVerifyRepositoryErrors(t *testing.T) {
	if _, err := VerifyRepository(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("short line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRepository(dir); err == nil {
		t.Fatal("malformed manifest accepted")
	}
}

func TestLoadRepositoryRunsScripts(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRepository(dir, repoReporters()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 {
		t.Fatalf("loaded %d", len(loaded))
	}
	byName := map[string]reporter.Reporter{}
	for _, r := range loaded {
		byName[r.Name()] = r
	}
	r, ok := byName["grid.version.globus"]
	if !ok {
		t.Fatalf("names = %v", byName)
	}
	if r.Version() != "1.1" {
		t.Fatalf("version = %q", r.Version())
	}
	// The loaded Exec reporter actually runs and emits a valid report
	// (failing on this build host, but spec-compliant).
	rep := r.Run(&reporter.Context{Hostname: "build", Now: tuesday})
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRepositoryRefusesTampered(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRepository(dir, repoReporters()); err != nil {
		t.Fatal(err)
	}
	f := filepath.Join(dir, scriptFileName("grid.version.globus"))
	if err := os.WriteFile(f, []byte("#!/bin/sh\necho hacked\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepository(dir); err == nil {
		t.Fatal("tampered repository loaded")
	}
}

func TestWriteRepositoryDuplicate(t *testing.T) {
	_, src, _ := testGrid()
	dup := []reporter.Reporter{
		&VersionReporter{Resource: src, Package: "globus"},
		&VersionReporter{Resource: src, Package: "globus"},
	}
	if _, err := WriteRepository(t.TempDir(), dup); err == nil {
		t.Fatal("duplicate accepted")
	}
}
