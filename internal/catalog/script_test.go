package catalog

import (
	"strings"
	"testing"

	"inca/internal/reporter"
)

func TestScriptRendersForAllTypes(t *testing.T) {
	g, src, dst := testGrid()
	rs := []reporter.Reporter{
		&VersionReporter{Resource: src, Package: "globus"},
		&UnitTestReporter{Resource: src, Package: "globus"},
		&ServiceReporter{Resource: src, Service: "ssh"},
		&CrossSiteReporter{Grid: g, Source: src, DestHost: dst.Host, Service: "gridftp"},
		&EnvReporter{Resource: src},
		&SoftEnvReporter{Resource: src},
		&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Pathload},
		&BenchmarkReporter{Resource: src, Kind: "flops"},
	}
	for _, r := range rs {
		s := Script(r)
		for _, want := range []string{"#!/bin/sh", "probe_main", "begin_report", "end_report", r.Name()} {
			if !strings.Contains(s, want) {
				t.Errorf("%s script missing %q", r.Name(), want)
			}
		}
		if ScriptLines(r) < 30 {
			t.Errorf("%s script implausibly small: %d lines", r.Name(), ScriptLines(r))
		}
	}
}

func TestScriptSizeOrdering(t *testing.T) {
	g, src, dst := testGrid()
	version := ScriptLines(&VersionReporter{Resource: src, Package: "globus"})
	service := ScriptLines(&ServiceReporter{Resource: src, Service: "ssh"})
	unit := ScriptLines(&UnitTestReporter{Resource: src, Package: "globus"})
	env := ScriptLines(&EnvReporter{Resource: src})
	spruce := ScriptLines(&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Spruce})
	chirp := ScriptLines(&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Pathchirp})
	pathload := ScriptLines(&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Pathload})
	bench := ScriptLines(&BenchmarkReporter{Resource: src, Kind: "flops"})

	t.Logf("sizes: version=%d service=%d unit=%d env=%d spruce=%d chirp=%d pathload=%d bench=%d",
		version, service, unit, env, spruce, chirp, pathload, bench)

	// Table 1 shape: version/service probes tiny; unit tests and
	// collectors mid-range; network wrappers bigger by tool complexity;
	// benchmark giants in the >1000-line tail.
	if version >= 50 {
		t.Errorf("version reporter %d lines, want <50 (Table 1's dominant bucket)", version)
	}
	if service >= 60 {
		t.Errorf("service reporter %d lines", service)
	}
	if !(version < unit && unit < spruce) {
		t.Errorf("ordering broken: version=%d unit=%d spruce=%d", version, unit, spruce)
	}
	if !(spruce < chirp && chirp < pathload) {
		t.Errorf("network tool ordering broken: %d %d %d", spruce, chirp, pathload)
	}
	if bench <= 1000 {
		t.Errorf("benchmark reporter %d lines, want >1000 (Table 1 tail)", bench)
	}
	if env <= version {
		t.Errorf("env collector (%d) should exceed a version probe (%d)", env, version)
	}
}

func TestScriptDeterministic(t *testing.T) {
	_, src, _ := testGrid()
	r := &UnitTestReporter{Resource: src, Package: "globus"}
	if Script(r) != Script(r) {
		t.Fatal("script rendering not deterministic")
	}
}

func TestUnitTestScriptGrowsWithPackageSurface(t *testing.T) {
	_, src, _ := testGrid()
	globus := ScriptLines(&UnitTestReporter{Resource: src, Package: "globus"})
	hdf4 := ScriptLines(&UnitTestReporter{Resource: src, Package: "hdf4"})
	if globus <= hdf4 {
		t.Fatalf("globus unit test (%d) should exceed hdf4 (%d)", globus, hdf4)
	}
}

func TestScriptFallbackForUnknownType(t *testing.T) {
	f := &reporter.Func{ReporterName: "custom.x", Fn: nil}
	s := Script(f)
	if !strings.Contains(s, "no script template") {
		t.Fatalf("fallback missing:\n%s", s)
	}
}
