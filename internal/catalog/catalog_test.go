package catalog

import (
	"strings"
	"testing"
	"time"

	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
)

var t0 = time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)

func testGrid() (*gridsim.Grid, *gridsim.Resource, *gridsim.Resource) {
	g := gridsim.NewTeraGrid(7, gridsim.TeraGridOptions{InstallTime: t0, MondayMaintenance: true})
	src, _ := g.Resource("tg-login1.sdsc.teragrid.org")
	dst, _ := g.Resource("tg-login1.caltech.teragrid.org")
	return g, src, dst
}

func ctxAt(host string, at time.Time) *reporter.Context {
	return &reporter.Context{Hostname: host, Now: at, WorkingDir: "/home/inca", ReporterPath: "/home/inca/reporters"}
}

// tuesday avoids the Monday maintenance window.
var tuesday = time.Date(2004, 6, 8, 10, 0, 0, 0, time.UTC)

func TestAllCatalogReportersSpecCompliant(t *testing.T) {
	g, src, _ := testGrid()
	rs := []reporter.Reporter{
		&VersionReporter{Resource: src, Package: "globus"},
		&UnitTestReporter{Resource: src, Package: "mpich"},
		&ServiceReporter{Resource: src, Service: "ssh"},
		&CrossSiteReporter{Grid: g, Source: src, DestHost: "tg-login1.caltech.teragrid.org", Service: "gridftp"},
		&EnvReporter{Resource: src},
		&SoftEnvReporter{Resource: src},
		&BandwidthReporter{Grid: g, Source: src, DestHost: "tg-login1.caltech.teragrid.org", Tool: Pathload},
		&BandwidthReporter{Grid: g, Source: src, DestHost: "tg-login1.caltech.teragrid.org", Tool: Spruce},
		&BenchmarkReporter{Resource: src, Kind: "flops"},
	}
	for _, r := range rs {
		if err := reporter.Validate(r, ctxAt(src.Host, tuesday)); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
		if r.Description() == "" {
			t.Errorf("%s: empty description", r.Name())
		}
		if _, ok := r.(reporter.Timed); !ok {
			t.Errorf("%s: catalog reporter without RunDuration", r.Name())
		}
	}
}

func TestVersionReporter(t *testing.T) {
	_, src, _ := testGrid()
	r := &VersionReporter{Resource: src, Package: "globus"}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatalf("failed: %s", rep.Footer.ErrorMessage)
	}
	v, ok := rep.Body.Value("version,package=globus")
	if !ok || v != "2.4.3" {
		t.Fatalf("version = %q,%v", v, ok)
	}
	// Missing package fails with a message.
	r2 := &VersionReporter{Resource: src, Package: "nonexistent"}
	rep2 := r2.Run(ctxAt(src.Host, tuesday))
	if rep2.Succeeded() || rep2.Footer.ErrorMessage == "" {
		t.Fatal("missing package did not fail properly")
	}
}

func TestVersionReporterCategoryNames(t *testing.T) {
	_, src, _ := testGrid()
	cases := map[string]string{
		"globus": "grid.version.globus",
		"mpich":  "development.version.mpich",
		"pbs":    "cluster.version.pbs",
	}
	for pkg, want := range cases {
		r := &VersionReporter{Resource: src, Package: pkg}
		if r.Name() != want {
			t.Errorf("Name(%s) = %q, want %q", pkg, r.Name(), want)
		}
	}
}

func TestUnitTestReporterBrokenPackage(t *testing.T) {
	_, src, _ := testGrid()
	if err := src.BreakPackage("hdf5", tuesday); err != nil {
		t.Fatal(err)
	}
	r := &UnitTestReporter{Resource: src, Package: "hdf5"}
	rep := r.Run(ctxAt(src.Host, tuesday.Add(time.Hour)))
	if rep.Succeeded() {
		t.Fatal("broken package passed unit test")
	}
	if !strings.Contains(rep.Footer.ErrorMessage, "hdf5") {
		t.Fatalf("error = %q", rep.Footer.ErrorMessage)
	}
	// Before the break it passed.
	repBefore := r.Run(ctxAt(src.Host, tuesday.Add(-time.Hour)))
	if !repBefore.Succeeded() {
		t.Fatalf("pre-break failure: %s", repBefore.Footer.ErrorMessage)
	}
}

func TestServiceReporterOutage(t *testing.T) {
	_, src, _ := testGrid()
	src.AddOutage(gridsim.Outage{Service: "ssh", From: tuesday, To: tuesday.Add(time.Hour), Reason: "sshd crashed"})
	r := &ServiceReporter{Resource: src, Service: "ssh"}
	rep := r.Run(ctxAt(src.Host, tuesday.Add(30*time.Minute)))
	if rep.Succeeded() {
		t.Fatal("outage not reflected")
	}
	if rep.Footer.ErrorMessage != "sshd crashed" {
		t.Fatalf("error = %q", rep.Footer.ErrorMessage)
	}
	rep = r.Run(ctxAt(src.Host, tuesday.Add(2*time.Hour)))
	if !rep.Succeeded() {
		t.Fatalf("post-outage failure: %s", rep.Footer.ErrorMessage)
	}
	if v, _ := rep.Body.Value("port,service=ssh"); v != "22" {
		t.Fatalf("port = %q", v)
	}
}

func TestCrossSiteReporter(t *testing.T) {
	g, src, dst := testGrid()
	r := &CrossSiteReporter{Grid: g, Source: src, DestHost: dst.Host, Service: "gram-gatekeeper"}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatalf("cross-site failed: %s", rep.Footer.ErrorMessage)
	}
	// Remote outage surfaces at the source.
	dst.AddOutage(gridsim.Outage{Service: "gram-gatekeeper", From: tuesday.Add(time.Hour), To: tuesday.Add(2 * time.Hour)})
	rep = r.Run(ctxAt(src.Host, tuesday.Add(90*time.Minute)))
	if rep.Succeeded() {
		t.Fatal("remote outage invisible")
	}
	if !strings.Contains(rep.Footer.ErrorMessage, dst.Host) {
		t.Fatalf("error lacks destination: %q", rep.Footer.ErrorMessage)
	}
	// Unknown destination fails cleanly.
	r2 := &CrossSiteReporter{Grid: g, Source: src, DestHost: "ghost.example.org", Service: "ssh"}
	if r2.Run(ctxAt(src.Host, tuesday)).Succeeded() {
		t.Fatal("unknown destination succeeded")
	}
}

func TestCrossSiteMaintenanceAtSource(t *testing.T) {
	g, src, dst := testGrid()
	monday := time.Date(2004, 6, 7, 9, 0, 0, 0, time.UTC)
	r := &CrossSiteReporter{Grid: g, Source: src, DestHost: dst.Host, Service: "ssh"}
	rep := r.Run(ctxAt(src.Host, monday))
	if rep.Succeeded() {
		t.Fatal("ran during source maintenance")
	}
}

func TestEnvReporter(t *testing.T) {
	_, src, _ := testGrid()
	r := &EnvReporter{Resource: src}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatal(rep.Footer.ErrorMessage)
	}
	v, ok := rep.Body.Value("value,variable=GLOBUS_LOCATION,environment=default")
	if !ok || v != "/usr/teragrid/globus" {
		t.Fatalf("GLOBUS_LOCATION = %q,%v", v, ok)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftEnvReporter(t *testing.T) {
	_, src, _ := testGrid()
	r := &SoftEnvReporter{Resource: src}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatal(rep.Footer.ErrorMessage)
	}
	if _, ok := rep.Body.Value("definition,entry=@teragrid,softenv=database"); !ok {
		t.Fatal("@teragrid entry missing")
	}
	// A resource without SoftEnv fails.
	g2 := gridsim.New("bare", 1)
	bare := g2.AddSite("X").AddResource("bare.host", gridsim.Hardware{})
	rep2 := (&SoftEnvReporter{Resource: bare}).Run(ctxAt("bare.host", tuesday))
	if rep2.Succeeded() {
		t.Fatal("empty SoftEnv database succeeded")
	}
}

func TestBandwidthReporterFigure2Shape(t *testing.T) {
	g, src, dst := testGrid()
	r := &BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Pathload}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatal(rep.Footer.ErrorMessage)
	}
	lower, ok := rep.Body.Float("value,statistic=lowerBound,metric=bandwidth")
	if !ok {
		t.Fatal("lowerBound missing (Figure 2 shape)")
	}
	upper, ok := rep.Body.Float("value,statistic=upperBound,metric=bandwidth")
	if !ok {
		t.Fatal("upperBound missing")
	}
	if lower >= upper {
		t.Fatalf("bounds inverted: %g >= %g", lower, upper)
	}
	if u, _ := rep.Body.Value("units,statistic=lowerBound,metric=bandwidth"); u != "Mbps" {
		t.Fatalf("units = %q", u)
	}
	// Single-estimate tools use a different statistic.
	r2 := &BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Spruce}
	rep2 := r2.Run(ctxAt(src.Host, tuesday))
	if _, ok := rep2.Body.Float("value,statistic=estimate,metric=bandwidth"); !ok {
		t.Fatal("spruce estimate missing")
	}
}

func TestBandwidthReporterNoRoute(t *testing.T) {
	g, src, _ := testGrid()
	r := &BandwidthReporter{Grid: g, Source: src, DestHost: "unrouted.example.org", Tool: Pathload}
	if r.Run(ctxAt(src.Host, tuesday)).Succeeded() {
		t.Fatal("no-route measurement succeeded")
	}
}

func TestBenchmarkReporter(t *testing.T) {
	_, src, _ := testGrid()
	r := &BenchmarkReporter{Resource: src, Kind: "flops"}
	rep := r.Run(ctxAt(src.Host, tuesday))
	if !rep.Succeeded() {
		t.Fatal(rep.Footer.ErrorMessage)
	}
	score, ok := rep.Body.Float("value,statistic=measured,metric=flops")
	if !ok || score <= 0 {
		t.Fatalf("score = %g,%v", score, ok)
	}
	if u, _ := rep.Body.Value("units,statistic=measured,metric=flops"); u != "GFLOPS" {
		t.Fatalf("units = %q", u)
	}
}

func TestRunDurationsOrdering(t *testing.T) {
	g, src, dst := testGrid()
	ctx := ctxAt(src.Host, tuesday)
	version := (&VersionReporter{Resource: src, Package: "globus"}).RunDuration(ctx)
	unit := (&UnitTestReporter{Resource: src, Package: "atlas"}).RunDuration(ctx)
	pathload := (&BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: Pathload}).RunDuration(ctx)
	// The paper's contrast: a BLAS unit test has more impact than a
	// Condor-G version query; network probes run for minutes.
	if !(version < unit && unit < pathload) {
		t.Fatalf("duration ordering broken: %v %v %v", version, unit, pathload)
	}
}

func TestCategoryFor(t *testing.T) {
	if CategoryFor("globus") != CategoryGrid {
		t.Fatal("globus not Grid")
	}
	if CategoryFor("mpich") != CategoryDevelopment {
		t.Fatal("mpich not Development")
	}
	if CategoryFor("pbs") != CategoryCluster {
		t.Fatal("pbs not Cluster")
	}
	if CategoryFor("unknown-pkg") != CategoryGrid {
		t.Fatal("unknown package should default to Grid")
	}
}

func TestReporterFunc(t *testing.T) {
	f := &reporter.Func{
		ReporterName:        "custom.probe",
		ReporterDescription: "a custom probe",
		Duration:            time.Second,
		Fn: func(ctx *reporter.Context, rep *report.Report) {
			rep.Body = report.Branch("custom", "x", report.Leaf("ok", "yes"))
		},
	}
	if err := reporter.Validate(f, ctxAt("h", tuesday)); err != nil {
		t.Fatal(err)
	}
	if f.Version() != "1.0" {
		t.Fatalf("default version = %q", f.Version())
	}
}
