// Package catalog provides the built-in reporters deployed to the simulated
// TeraGrid — the reproduction of the reporter set in Section 4.1 of the
// paper: package version queries, package unit tests, default-user-
// environment and SoftEnv collectors, local and cross-site service probes,
// network bandwidth reporters (pathload / pathchirp / spruce), and
// GRASP-style benchmark reporters.
//
// Each reporter can also render itself as a standalone script
// (see script.go), which is how the Table 1 reporter-size distribution is
// regenerated.
package catalog

import (
	"fmt"
	"strings"
	"time"

	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
)

// Category is the status-page grouping from Section 4.1.
type Category string

// The three TeraGrid categories.
const (
	CategoryGrid        Category = "Grid"
	CategoryDevelopment Category = "Development"
	CategoryCluster     Category = "Cluster"
)

// CategoryFor classifies a package name into its status-page category.
func CategoryFor(pkg string) Category {
	switch gridsim.PackageCategory(pkg) {
	case "development":
		return CategoryDevelopment
	case "cluster":
		return CategoryCluster
	default:
		return CategoryGrid
	}
}

// VersionReporter publishes the installed version of a software package
// ("a reporter can publish the version of a software package", Section
// 3.1.2). These are the small, numerous reporters that dominate Table 1.
type VersionReporter struct {
	Resource *gridsim.Resource
	Package  string
}

// Name implements Reporter.
func (v *VersionReporter) Name() string {
	return fmt.Sprintf("%s.version.%s", categoryPrefix(CategoryFor(v.Package)), v.Package)
}

// Version implements Reporter.
func (v *VersionReporter) Version() string { return "1.1" }

// Description implements Reporter.
func (v *VersionReporter) Description() string {
	return fmt.Sprintf("reports the installed version of %s", v.Package)
}

// RunDuration implements Timed: version queries are near-instant.
func (v *VersionReporter) RunDuration(*reporter.Context) time.Duration { return 2 * time.Second }

// Run implements Reporter.
func (v *VersionReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(v, ctx)
	p, ok := v.Resource.Package(v.Package)
	if !ok {
		return rep.Fail("package %s is not installed", v.Package)
	}
	e, ok := p.At(ctx.Now)
	if !ok {
		return rep.Fail("package %s is not installed", v.Package)
	}
	rep.Body = report.Branch("package", v.Package,
		report.Leaf("version", e.Version),
		report.Leaf("location", "/usr/teragrid/"+v.Package),
	)
	return rep
}

func categoryPrefix(c Category) string {
	switch c {
	case CategoryDevelopment:
		return "development"
	case CategoryCluster:
		return "cluster"
	default:
		return "grid"
	}
}

// UnitTestReporter performs a functional unit test of a package ("perform a
// unit test to evaluate software functionality").
type UnitTestReporter struct {
	Resource *gridsim.Resource
	Package  string
}

// Name implements Reporter.
func (u *UnitTestReporter) Name() string {
	return fmt.Sprintf("%s.unit.%s", categoryPrefix(CategoryFor(u.Package)), u.Package)
}

// Version implements Reporter.
func (u *UnitTestReporter) Version() string { return "1.3" }

// Description implements Reporter.
func (u *UnitTestReporter) Description() string {
	return fmt.Sprintf("runs the %s functionality unit test", u.Package)
}

// RunDuration implements Timed: unit tests occupy the resource noticeably
// longer than version queries (the paper's BLAS-vs-Condor-G contrast).
func (u *UnitTestReporter) RunDuration(*reporter.Context) time.Duration {
	switch CategoryFor(u.Package) {
	case CategoryDevelopment:
		return 45 * time.Second // compile-and-run style tests
	case CategoryCluster:
		return 30 * time.Second // batch submission round trip
	default:
		return 20 * time.Second
	}
}

// Run implements Reporter.
func (u *UnitTestReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(u, ctx)
	p, ok := u.Resource.Package(u.Package)
	if !ok {
		return rep.Fail("package %s is not installed", u.Package)
	}
	pass, reason := p.UnitTestPasses(ctx.Now)
	if !pass {
		return rep.Fail("%s", reason)
	}
	e, _ := p.At(ctx.Now)
	body := report.Branch("unitTest", u.Package,
		report.Leaf("tested", e.Version),
		report.Leaf("result", "all subtests passed"),
	)
	// Each subtest carries its captured output, so unit test reports for
	// large packages run to several kilobytes — the mid-range of the
	// report-size distribution in Figure 8.
	for _, st := range subtestsFor(u.Package) {
		body.Add(report.Branch("subtest", st,
			report.Leaf("status", "pass"),
			report.Leaf("output", subtestOutput(u.Package, st)),
		))
	}
	rep.Body = body
	return rep
}

// subtestOutput fabricates the captured output of one subtest,
// deterministically sized by how verbose the package's tests are.
func subtestOutput(pkg, subtest string) string {
	verbosity := map[string]int{
		"globus": 18, "gridftp": 12, "srb": 10, "mpich": 24, "atlas": 8,
		"hdf5": 6, "hdf4": 4, "pbs": 10, "condor-g": 8, "petsc": 30,
		"fftw": 6, "lapack": 8, "blas": 6,
	}[pkg]
	if verbosity == 0 {
		verbosity = 2
	}
	var sb strings.Builder
	for i := 0; i < verbosity; i++ {
		fmt.Fprintf(&sb, "[%s/%s] step %02d: expected output matched (elapsed 0.%02ds)\n",
			pkg, subtest, i, (i*7)%100)
	}
	return sb.String()
}

// ServiceReporter probes a persistent service on the local resource (SSH
// server, GRAM gatekeeper, GridFTP, SRB — the service-reliability use
// case).
type ServiceReporter struct {
	Resource *gridsim.Resource
	Service  string
}

// Name implements Reporter.
func (s *ServiceReporter) Name() string { return "grid.service." + s.Service }

// Version implements Reporter.
func (s *ServiceReporter) Version() string { return "1.2" }

// Description implements Reporter.
func (s *ServiceReporter) Description() string {
	return fmt.Sprintf("checks that the local %s service accepts connections", s.Service)
}

// RunDuration implements Timed.
func (s *ServiceReporter) RunDuration(*reporter.Context) time.Duration { return 5 * time.Second }

// Run implements Reporter.
func (s *ServiceReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(s, ctx)
	up, reason := s.Resource.ServiceUp(s.Service, ctx.Now)
	if !up {
		return rep.Fail("%s", reason)
	}
	svc, _ := s.Resource.Service(s.Service)
	rep.Body = report.Branch("service", s.Service,
		report.Leaff("port", "%d", svc.Port),
		report.Leaf("state", "accepting connections"),
	)
	return rep
}

// CrossSiteReporter verifies that this resource can reach a service on a
// remote resource — the cross-site tests of Section 4.1 and the two-way
// Grid-service-availability metric of Section 3.3.
type CrossSiteReporter struct {
	Grid     *gridsim.Grid
	Source   *gridsim.Resource
	DestHost string
	Service  string
}

// Name implements Reporter.
func (c *CrossSiteReporter) Name() string {
	return fmt.Sprintf("grid.xsite.%s.to.%s", c.Service, c.DestHost)
}

// Version implements Reporter.
func (c *CrossSiteReporter) Version() string { return "1.0" }

// Description implements Reporter.
func (c *CrossSiteReporter) Description() string {
	return fmt.Sprintf("checks %s access from %s to %s", c.Service, c.Source.Host, c.DestHost)
}

// RunDuration implements Timed: includes GSI authentication round trips.
func (c *CrossSiteReporter) RunDuration(*reporter.Context) time.Duration { return 15 * time.Second }

// Run implements Reporter.
func (c *CrossSiteReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(c, ctx)
	if c.Source.InMaintenance(ctx.Now) {
		return rep.Fail("source resource in scheduled maintenance")
	}
	dst, ok := c.Grid.Resource(c.DestHost)
	if !ok {
		return rep.Fail("unknown destination host %s", c.DestHost)
	}
	up, reason := dst.ServiceUp(c.Service, ctx.Now)
	if !up {
		return rep.Fail("remote %s on %s: %s", c.Service, c.DestHost, reason)
	}
	rep.Body = report.Branch("crossSite", c.Service,
		report.Leaf("source", c.Source.Host),
		report.Leaf("destination", c.DestHost),
		report.Leaf("state", "reachable"),
	)
	return rep
}

// EnvReporter collects the default user environment ("a reporter was also
// written to collect the set of environment variables in the default user
// environment", Section 4.1).
type EnvReporter struct {
	Resource *gridsim.Resource
}

// Name implements Reporter.
func (e *EnvReporter) Name() string { return "cluster.admin.env" }

// Version implements Reporter.
func (e *EnvReporter) Version() string { return "2.0" }

// Description implements Reporter.
func (e *EnvReporter) Description() string {
	return "collects the default user environment variables"
}

// RunDuration implements Timed.
func (e *EnvReporter) RunDuration(*reporter.Context) time.Duration { return 3 * time.Second }

// Run implements Reporter.
func (e *EnvReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(e, ctx)
	env := e.Resource.Env()
	body := report.Branch("environment", "default")
	// Deterministic order for stable cache contents.
	for _, k := range sortedKeys(env) {
		body.Add(report.Branch("variable", k, report.Leaf("value", env[k])))
	}
	rep.Body = body
	return rep
}

// SoftEnvReporter collects the resource's SoftEnv database.
type SoftEnvReporter struct {
	Resource *gridsim.Resource
}

// Name implements Reporter.
func (s *SoftEnvReporter) Name() string { return "cluster.admin.softenv" }

// Version implements Reporter.
func (s *SoftEnvReporter) Version() string { return "1.1" }

// Description implements Reporter.
func (s *SoftEnvReporter) Description() string { return "dumps the SoftEnv database" }

// RunDuration implements Timed.
func (s *SoftEnvReporter) RunDuration(*reporter.Context) time.Duration { return 4 * time.Second }

// Run implements Reporter.
func (s *SoftEnvReporter) Run(ctx *reporter.Context) *report.Report {
	rep := reporter.New(s, ctx)
	entries := s.Resource.SoftEnv()
	if len(entries) == 0 {
		return rep.Fail("SoftEnv database is empty or unreadable")
	}
	body := report.Branch("softenv", "database")
	for _, e := range entries {
		body.Add(report.Branch("entry", e.Key, report.Leaf("definition", e.Value)))
	}
	rep.Body = body
	return rep
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
