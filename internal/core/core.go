// Package core is the top-level Inca framework façade: it assembles the
// client/server architecture of Figure 1 — reporters and distributed
// controllers on every resource, the centralized controller and depot on
// the server — into a runnable deployment, and provides the deterministic
// virtual-time driver the evaluation harness uses to replay week-long
// TeraGrid operation in seconds.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/catalog"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
	"inca/internal/simtime"
)

// Options configures a simulated deployment.
type Options struct {
	// Seed drives the grid's failure models and the reporters' randomized
	// schedule offsets.
	Seed int64
	// Start is the virtual start instant.
	Start time.Time
	// Mode is the envelope encoding (Body reproduces the deployed system).
	Mode envelope.Mode
	// Cache overrides the depot cache implementation (default StreamCache).
	Cache depot.Cache
	// Grid overrides the grid options (default DefaultTeraGridOptions with
	// the stack installed 30 days before Start).
	Grid *gridsim.TeraGridOptions
	// Availability, when true, uploads the summary-percentage archival
	// policy so RecordAvailability works.
	Availability bool
}

// Deployment is one wired Inca instance over the simulated TeraGrid.
type Deployment struct {
	Opt        Options
	Clock      *simtime.Sim
	Grid       *gridsim.Grid
	Depot      *depot.Depot
	Controller *controller.Controller
	Agents     []*agent.Agent
	Agreement  *agreement.Agreement

	// evaluator memoizes parsed reports across verification cycles.
	evaluator *agreement.Evaluator
}

// VOName is the branch component every deployment report files under.
const VOName = "teragrid"

// BranchFor returns the depot location for one reporter on one resource:
// reporter=<name>,resource=<host>,site=<site>,vo=teragrid.
func BranchFor(reporterName, host, site string) branch.ID {
	return BranchInVO(VOName, reporterName, host, site)
}

// BranchInVO is BranchFor with an explicit VO component.
func BranchInVO(vo, reporterName, host, site string) branch.ID {
	return branch.MustParse(fmt.Sprintf("reporter=%s,resource=%s,site=%s,vo=%s",
		reporterName, host, site, vo))
}

// NewTeraGridDeployment builds the ten-resource deployment of Figure 3 /
// Table 2: per-host specification files whose reporter counts match the
// table exactly (136 / 128 / 71 per hour), a centralized controller with
// the host allowlist, and a depot.
func NewTeraGridDeployment(opt Options) (*Deployment, error) {
	if opt.Start.IsZero() {
		opt.Start = time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC)
	}
	gridOpt := gridsim.DefaultTeraGridOptions(opt.Start.Add(-30 * 24 * time.Hour))
	if opt.Grid != nil {
		gridOpt = *opt.Grid
	}
	clock := simtime.NewSim(opt.Start)
	grid := gridsim.NewTeraGrid(opt.Seed, gridOpt)

	cache := opt.Cache
	if cache == nil {
		cache = depot.NewStreamCache()
	}
	dep := depot.New(cache)
	if opt.Availability {
		if err := dep.AddPolicy(consumer.AvailabilityPolicy()); err != nil {
			return nil, err
		}
	}

	var allow []string
	for _, h := range gridsim.TeraGridHosts {
		allow = append(allow, h.Host)
	}
	ctl := controller.New(dep, controller.Options{
		Allowlist: allow,
		Mode:      opt.Mode,
		Now:       clock.Now,
	})

	d := &Deployment{
		Opt:        opt,
		Clock:      clock,
		Grid:       grid,
		Depot:      dep,
		Controller: ctl,
		Agreement:  agreement.TeraGrid(),
	}
	sink := agent.SinkFunc(ctl.SubmitReport)
	for _, h := range gridsim.TeraGridHosts {
		res, ok := grid.Resource(h.Host)
		if !ok {
			return nil, fmt.Errorf("core: grid missing host %s", h.Host)
		}
		rng := rand.New(rand.NewSource(opt.Seed*1000 + int64(len(d.Agents))))
		spec, err := BuildSpec(grid, res, rng)
		if err != nil {
			return nil, err
		}
		if len(spec.Series) != h.Reporters {
			return nil, fmt.Errorf("core: %s spec has %d series, Table 2 says %d",
				h.Host, len(spec.Series), h.Reporters)
		}
		a, err := agent.New(spec, clock, sink, agent.Simulated)
		if err != nil {
			return nil, err
		}
		d.Agents = append(d.Agents, a)
	}
	return d, nil
}

// BuildSpec assembles the specification file for one resource, per its
// Table 2 host kind (see DESIGN.md E2 for the composition arithmetic).
func BuildSpec(grid *gridsim.Grid, res *gridsim.Resource, rng *rand.Rand) (agent.Spec, error) {
	kind, err := gridsim.KindOf(res.Host)
	if err != nil {
		return agent.Spec{}, err
	}
	spec := agent.Spec{
		Resource:     res.Host,
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
	}
	site := res.Site.Name
	hourly := func() *schedule.Spec { return schedule.MustEvery(time.Hour, rng) }
	add := func(r reporter.Reporter, limit time.Duration, args ...report.Arg) {
		spec.Series = append(spec.Series, agent.Series{
			Reporter: r,
			Args:     args,
			Branch:   BranchFor(r.Name(), res.Host, site),
			Cron:     hourly(),
			Limit:    limit,
		})
	}

	// Package reporters: core stack everywhere (minus gm on reduced
	// hosts), extended and viz stacks per kind.
	pkgSets := []map[string]string{
		gridsim.GridPackages, gridsim.DevelopmentPackages, gridsim.ClusterPackages,
	}
	if kind != gridsim.ReducedHost {
		pkgSets = append(pkgSets, gridsim.ExtendedPackages)
	}
	if kind == gridsim.VizHost {
		pkgSets = append(pkgSets, gridsim.VizPackages)
	}
	var pkgs []string
	for _, set := range pkgSets {
		for name := range set {
			if kind == gridsim.ReducedHost && name == gridsim.ReducedSkipPackage {
				continue
			}
			pkgs = append(pkgs, name)
		}
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		add(&catalog.VersionReporter{Resource: res, Package: pkg}, time.Minute)
		add(&catalog.UnitTestReporter{Resource: res, Package: pkg}, 5*time.Minute)
	}

	// Environment collectors.
	add(&catalog.EnvReporter{Resource: res}, time.Minute)
	add(&catalog.SoftEnvReporter{Resource: res}, time.Minute)

	// Local service probes.
	for _, svc := range gridsim.TeraGridServices {
		add(&catalog.ServiceReporter{Resource: res, Service: svc.Name}, 2*time.Minute)
	}

	// Cross-site probes to every other resource: all four services on
	// full/viz hosts, gatekeeper and gridftp only on reduced hosts.
	var others []string
	for _, h := range gridsim.TeraGridHosts {
		if h.Host != res.Host {
			others = append(others, h.Host)
		}
	}
	xsiteServices := []string{"gram-gatekeeper", "gridftp", "ssh", "srb"}
	if kind == gridsim.ReducedHost {
		xsiteServices = []string{"gram-gatekeeper", "gridftp"}
	}
	for _, svc := range xsiteServices {
		for _, dest := range others {
			add(&catalog.CrossSiteReporter{Grid: grid, Source: res, DestHost: dest, Service: svc},
				5*time.Minute, report.Arg{Name: "dest", Value: dest})
		}
	}

	// Network bandwidth reporters (full/viz hosts only).
	if kind != gridsim.ReducedHost {
		for _, tool := range []catalog.NetworkTool{catalog.Pathload, catalog.Pathchirp, catalog.Spruce} {
			for _, dest := range others {
				add(&catalog.BandwidthReporter{Grid: grid, Source: res, DestHost: dest, Tool: tool},
					10*time.Minute, report.Arg{Name: "dest", Value: dest})
			}
		}
	}

	// GRASP-style benchmarks: the full suite on production nodes, the
	// flops probe alone on reduced hosts.
	benchKinds := []string{"flops", "membw", "io"}
	if kind == gridsim.ReducedHost {
		benchKinds = []string{"flops"}
	}
	for _, k := range benchKinds {
		add(&catalog.BenchmarkReporter{Resource: res, Kind: k}, 10*time.Minute)
	}

	return spec, nil
}

// AgentFor returns the agent running on host.
func (d *Deployment) AgentFor(host string) (*agent.Agent, bool) {
	for _, a := range d.Agents {
		if a.Resource() == host {
			return a, true
		}
	}
	return nil, false
}

// TotalSeries sums the configured reporters per hour across the VO
// (Table 2's bottom line).
func (d *Deployment) TotalSeries() int {
	n := 0
	for _, a := range d.Agents {
		n += a.SeriesCount()
	}
	return n
}

// RunUntil advances virtual time to target, firing every reporter on
// schedule. When tick > 0, onTick runs at each tick boundary (the
// evaluation harness uses 10-minute ticks for availability snapshots).
func (d *Deployment) RunUntil(target time.Time, tick time.Duration, onTick func(now time.Time)) {
	var nextTick time.Time
	if onTick != nil && tick > 0 {
		nextTick = d.Clock.Now().Truncate(tick).Add(tick)
	}
	for {
		earliest := target
		for _, a := range d.Agents {
			if nf, ok := a.Scheduler().NextFire(); ok && nf.Before(earliest) {
				earliest = nf
			}
		}
		if !nextTick.IsZero() && nextTick.Before(earliest) {
			earliest = nextTick
		}
		if earliest.After(target) {
			earliest = target
		}
		d.Clock.AdvanceTo(earliest)
		now := d.Clock.Now()
		for _, a := range d.Agents {
			a.Scheduler().RunPending()
		}
		if !nextTick.IsZero() && !now.Before(nextTick) {
			onTick(now)
			nextTick = nextTick.Add(tick)
		}
		if !now.Before(target) {
			return
		}
	}
}

// DriveAgents advances a shared virtual clock to target, firing every
// agent's due series in deadline order — the deterministic driver loop for
// ad-hoc agent sets that are not part of a Deployment (examples, tests,
// integration harnesses).
func DriveAgents(clock *simtime.Sim, agents []*agent.Agent, target time.Time) {
	for {
		var next time.Time
		found := false
		for _, a := range agents {
			if nf, ok := a.Scheduler().NextFire(); ok && (!found || nf.Before(next)) {
				next, found = nf, true
			}
		}
		if !found || next.After(target) {
			clock.AdvanceTo(target)
			return
		}
		clock.AdvanceTo(next)
		for _, a := range agents {
			a.Scheduler().RunPending()
		}
	}
}

// Evaluate runs agreement verification over the current cache, memoizing
// parsed reports across calls (most cached entries are unchanged between
// 10-minute snapshot cycles under hourly collection).
func (d *Deployment) Evaluate() (*agreement.VOStatus, error) {
	if d.evaluator == nil {
		d.evaluator = agreement.NewEvaluator(d.Agreement)
	}
	return d.evaluator.Evaluate(d.Depot.Cache(), d.Clock.Now())
}

// Snapshot evaluates and archives availability percentages (requires
// Options.Availability).
func (d *Deployment) Snapshot() (*agreement.VOStatus, error) {
	status, err := d.Evaluate()
	if err != nil {
		return nil, err
	}
	if err := consumer.RecordAvailability(d.Depot, status); err != nil {
		return nil, err
	}
	return status, nil
}
