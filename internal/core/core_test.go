package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/gridsim"
)

var start = time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC) // a Tuesday

func quietGridOptions() *gridsim.TeraGridOptions {
	opt := gridsim.TeraGridOptions{
		InstallTime:       start.Add(-30 * 24 * time.Hour),
		MondayMaintenance: true,
		// No stochastic failures: tests that assert full compliance need a
		// quiet grid.
	}
	return &opt
}

func newQuietDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewTeraGridDeployment(Options{
		Seed:         1,
		Start:        start,
		Grid:         quietGridOptions(),
		Availability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeploymentMatchesTable2(t *testing.T) {
	d := newQuietDeployment(t)
	if len(d.Agents) != 10 {
		t.Fatalf("agents = %d", len(d.Agents))
	}
	for _, h := range gridsim.TeraGridHosts {
		a, ok := d.AgentFor(h.Host)
		if !ok {
			t.Fatalf("no agent for %s", h.Host)
		}
		if a.SeriesCount() != h.Reporters {
			t.Fatalf("%s: %d series, Table 2 says %d", h.Host, a.SeriesCount(), h.Reporters)
		}
	}
	if d.TotalSeries() != 1060 {
		t.Fatalf("total = %d, want 1060", d.TotalSeries())
	}
}

func TestBuildSpecDistinctBranches(t *testing.T) {
	d := newQuietDeployment(t)
	seen := map[string]bool{}
	for _, a := range d.Agents {
		_ = a
	}
	// Rebuild one spec to inspect series directly.
	res, _ := d.Grid.Resource("tg-login1.sdsc.teragrid.org")
	spec, err := BuildSpec(d.Grid, res, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spec.Series {
		key := s.Branch.String()
		if seen[key] {
			t.Fatalf("duplicate branch %s", key)
		}
		seen[key] = true
		if v, _ := s.Branch.Get("vo"); v != VOName {
			t.Fatalf("branch %s lacks vo", key)
		}
		if v, _ := s.Branch.Get("resource"); v != res.Host {
			t.Fatalf("branch %s lacks resource", key)
		}
		if s.Limit <= 0 {
			t.Fatalf("series %s has no run-time limit", s.Reporter.Name())
		}
	}
}

func TestOneHourOfOperation(t *testing.T) {
	d := newQuietDeployment(t)
	d.RunUntil(start.Add(time.Hour), 0, nil)
	accepted, rejected, errs := d.Controller.Counters()
	if accepted != 1060 {
		t.Fatalf("accepted = %d, want 1060 (one hour of Table 2)", accepted)
	}
	if rejected != 0 || errs != 0 {
		t.Fatalf("rejected/errs = %d/%d", rejected, errs)
	}
	if d.Depot.Cache().Count() != 1060 {
		t.Fatalf("cache entries = %d", d.Depot.Cache().Count())
	}
	// Paper: the steady-state TeraGrid cache held ~1.5 MB.
	size := d.Depot.Cache().Size()
	if size < 500*1024 || size > 4*1024*1024 {
		t.Fatalf("cache size = %d bytes, outside the plausible range", size)
	}
	// Second hour replaces, not grows.
	d.RunUntil(start.Add(2*time.Hour), 0, nil)
	if d.Depot.Cache().Count() != 1060 {
		t.Fatalf("cache entries after replacement hour = %d", d.Depot.Cache().Count())
	}
}

func TestQuietGridFullyCompliant(t *testing.T) {
	d := newQuietDeployment(t)
	d.RunUntil(start.Add(time.Hour+time.Minute), 0, nil)
	status, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Resources) != 10 {
		t.Fatalf("resources evaluated = %d", len(status.Resources))
	}
	for _, rs := range status.Resources {
		if fails := rs.Failures(); len(fails) != 0 {
			t.Fatalf("%s failures on quiet grid: %+v", rs.Resource, fails[:min(3, len(fails))])
		}
	}
	// "over 900 pieces of data are compared and verified"
	if status.PiecesVerified() < 900 {
		t.Fatalf("pieces verified = %d, want > 900", status.PiecesVerified())
	}
}

func TestInjectedOutageVisibleInEvaluation(t *testing.T) {
	d := newQuietDeployment(t)
	res, _ := d.Grid.Resource("tg-login1.ncsa.teragrid.org")
	res.AddOutage(gridsim.Outage{
		Service: "gram-gatekeeper",
		From:    start, To: start.Add(2 * time.Hour),
		Reason: "gatekeeper misconfigured",
	})
	d.RunUntil(start.Add(time.Hour+time.Minute), 0, nil)
	status, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	var ncsa *agreement.ResourceStatus
	for _, rs := range status.Resources {
		if rs.Resource == "tg-login1.ncsa.teragrid.org" {
			ncsa = rs
		}
	}
	if ncsa == nil {
		t.Fatal("ncsa missing")
	}
	fails := ncsa.Failures()
	if len(fails) == 0 {
		t.Fatal("outage invisible in evaluation")
	}
	found := false
	for _, f := range fails {
		if f.Test == "gram-gatekeeper: service" && f.Detail == "gatekeeper misconfigured" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gatekeeper failure not reported: %+v", fails)
	}
}

func TestSnapshotArchivesAvailability(t *testing.T) {
	d := newQuietDeployment(t)
	ticks := 0
	d.RunUntil(start.Add(90*time.Minute), 10*time.Minute, func(now time.Time) {
		if _, err := d.Snapshot(); err != nil {
			t.Fatal(err)
		}
		ticks++
	})
	if ticks != 9 {
		t.Fatalf("ticks = %d, want 9", ticks)
	}
	s, err := consumer.AvailabilitySeries(d.Depot, "tg-login1.sdsc.teragrid.org",
		agreement.Grid, start, start.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	known := 0
	for _, p := range s.Points {
		if !math.IsNaN(p.Values[0]) {
			known++
			// After the first full hour everything reports; quiet grid →
			// 100%. Early points may be <100 while data is missing.
		}
	}
	if known < 5 {
		t.Fatalf("known availability points = %d", known)
	}
	last := s.Points[len(s.Points)-1].Values[0]
	if math.IsNaN(last) || last < 99.9 {
		t.Fatalf("final availability = %g, want 100", last)
	}
}

func TestBranchForShape(t *testing.T) {
	id := BranchFor("grid.version.globus", "host1", "SDSC")
	if id.String() != "reporter=grid.version.globus,resource=host1,site=SDSC,vo=teragrid" {
		t.Fatalf("id = %s", id)
	}
}

func TestRunUntilIdempotentAtTarget(t *testing.T) {
	d := newQuietDeployment(t)
	target := start.Add(30 * time.Minute)
	d.RunUntil(target, 0, nil)
	if !d.Clock.Now().Equal(target) {
		t.Fatalf("clock = %v", d.Clock.Now())
	}
	before, _, _ := d.Controller.Counters()
	d.RunUntil(target, 0, nil) // no-op
	after, _, _ := d.Controller.Counters()
	if after != before {
		t.Fatalf("re-run at target fired %d extra reports", after-before)
	}
}

func TestResponsesRecordVirtualTime(t *testing.T) {
	d := newQuietDeployment(t)
	d.RunUntil(start.Add(30*time.Minute), 0, nil)
	for _, r := range d.Controller.Responses() {
		if r.At.Before(start) || r.At.After(start.Add(30*time.Minute)) {
			t.Fatalf("response stamped %v outside the virtual window", r.At)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
