package core

import (
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/catalog"
	"inca/internal/gridsim"
	"inca/internal/reporter"
)

// TestSpecDocumentRoundTrip: the full central-configuration loop — a Table
// 2 specification serialized to XML, parsed back, and re-materialized by
// the catalog resolver must reproduce the exact series set (reporter
// names, schedules, limits, branches, args).
func TestSpecDocumentRoundTrip(t *testing.T) {
	grid := gridsim.NewTeraGrid(1, gridsim.TeraGridOptions{InstallTime: demoStart.Add(-30 * 24 * time.Hour)})
	res, _ := grid.Resource("tg-login1.caltech.teragrid.org")
	orig, err := BuildSpec(grid, res, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := agent.MarshalSpec(orig.Def())
	if err != nil {
		t.Fatal(err)
	}
	def, err := agent.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := RoundTripSpec(grid, def)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Resource != orig.Resource || len(rebuilt.Series) != len(orig.Series) {
		t.Fatalf("shape: %s/%d vs %s/%d", rebuilt.Resource, len(rebuilt.Series), orig.Resource, len(orig.Series))
	}
	for i := range orig.Series {
		o, r := orig.Series[i], rebuilt.Series[i]
		if o.Reporter.Name() != r.Reporter.Name() {
			t.Fatalf("series %d reporter: %s vs %s", i, r.Reporter.Name(), o.Reporter.Name())
		}
		if o.Cron.String() != r.Cron.String() {
			t.Fatalf("series %d cron: %s vs %s", i, r.Cron.String(), o.Cron.String())
		}
		if !o.Branch.Equal(r.Branch) {
			t.Fatalf("series %d branch: %s vs %s", i, r.Branch, o.Branch)
		}
		if o.Limit != r.Limit {
			t.Fatalf("series %d limit: %v vs %v", i, r.Limit, o.Limit)
		}
		if !reflect.DeepEqual(o.Args, r.Args) {
			t.Fatalf("series %d args: %v vs %v", i, r.Args, o.Args)
		}
		// The reconstructed reporters must be the same concrete type.
		if reflect.TypeOf(o.Reporter) != reflect.TypeOf(r.Reporter) {
			t.Fatalf("series %d type: %T vs %T", i, r.Reporter, o.Reporter)
		}
	}
}

// TestRebuiltSpecProducesIdenticalReports: beyond structural equality, a
// reconstituted spec must behave identically.
func TestRebuiltSpecProducesIdenticalReports(t *testing.T) {
	grid := gridsim.NewTeraGrid(1, gridsim.TeraGridOptions{InstallTime: demoStart.Add(-30 * 24 * time.Hour)})
	res, _ := grid.Resource("tg-login1.sdsc.teragrid.org")
	orig, err := BuildSpec(grid, res, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := agent.MarshalSpec(orig.Def())
	if err != nil {
		t.Fatal(err)
	}
	def, err := agent.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := RoundTripSpec(grid, def)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &reporter.Context{Hostname: res.Host, Now: demoStart}
	for i := range orig.Series {
		a := orig.Series[i].Reporter.Run(ctx)
		b := rebuilt.Series[i].Reporter.Run(ctx)
		if a.Succeeded() != b.Succeeded() {
			t.Fatalf("series %s: success divergence", orig.Series[i].Reporter.Name())
		}
		if !reflect.DeepEqual(a.Body, b.Body) {
			t.Fatalf("series %s: body divergence", orig.Series[i].Reporter.Name())
		}
	}
}

func TestCatalogResolverErrors(t *testing.T) {
	grid := DemoGrid(1, demoStart.Add(-24*time.Hour))
	resolve := CatalogResolver(grid, "login.sitea.example.org")
	for _, bad := range []string{
		"", "oneword", "two.words",
		"grid.xsite.missingdest", "grid.network.pathload", // no .to.
		"grid.xsite..to.", "grid.benchmark.other.flops",
		"grid.mystery.thing",
	} {
		if _, err := resolve(bad); err == nil {
			t.Errorf("resolved %q", bad)
		}
	}
	badHost := CatalogResolver(grid, "nowhere.example.org")
	if _, err := badHost("grid.version.globus"); err == nil {
		t.Error("resolved reporter for unknown host")
	}
}

func TestParseSpecValidation(t *testing.T) {
	if _, err := agent.ParseSpec([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := agent.ParseSpec([]byte(`<specification resource=""><series reporter="x" cron="* * * * *" branch="a=1"/></specification>`)); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := agent.ParseSpec([]byte(`<specification resource="h"></specification>`)); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestBuildFromDefErrors(t *testing.T) {
	grid := DemoGrid(1, demoStart.Add(-24*time.Hour))
	resolve := CatalogResolver(grid, "login.sitea.example.org")
	mk := func(mut func(*agent.SeriesDef)) agent.SpecDef {
		sd := agent.SeriesDef{
			Reporter: "grid.version.globus",
			Cron:     "0 * * * *",
			Branch:   "probe=x",
			Limit:    "1m",
		}
		mut(&sd)
		return agent.SpecDef{Resource: "login.sitea.example.org", Series: []agent.SeriesDef{sd}}
	}
	cases := []func(*agent.SeriesDef){
		func(s *agent.SeriesDef) { s.Reporter = "no.such.kind.name" },
		func(s *agent.SeriesDef) { s.Cron = "not cron" },
		func(s *agent.SeriesDef) { s.Branch = "notbranch" },
		func(s *agent.SeriesDef) { s.Limit = "soon" },
	}
	for i, mut := range cases {
		if _, err := agent.BuildFromDef(mk(mut), resolve); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// The unmutated def builds.
	if _, err := agent.BuildFromDef(mk(func(*agent.SeriesDef) {}), resolve); err != nil {
		t.Fatal(err)
	}
}

// TestRepositoryResolverEndToEnd: the full deployed execution model — a
// spec document resolved against an installed script repository, every
// series running a checksummed shell script.
func TestRepositoryResolverEndToEnd(t *testing.T) {
	grid := DemoGrid(1, demoStart.Add(-24*time.Hour))
	const host = "login.sitea.example.org"
	// Publish the host's reporters as a repository.
	reps := DemoReporters(grid, host)
	var list []reporter.Reporter
	names := make([]string, 0, len(reps))
	for n := range reps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		list = append(list, reps[n])
	}
	dir := t.TempDir()
	if _, err := catalog.WriteRepository(dir, list); err != nil {
		t.Fatal(err)
	}
	resolve, err := RepositoryResolver(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Distribute the spec and build against the repository.
	spec, err := DemoSpec(grid, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := agent.MarshalSpec(spec.Def())
	if err != nil {
		t.Fatal(err)
	}
	def, err := agent.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := agent.BuildFromDef(def, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt.Series) != len(spec.Series) {
		t.Fatalf("series = %d, want %d", len(rebuilt.Series), len(spec.Series))
	}
	// Every series is now an Exec reporter; run one and require a
	// spec-compliant report (failing on this host is fine).
	for _, s := range rebuilt.Series {
		if _, ok := s.Reporter.(*reporter.Exec); !ok {
			t.Fatalf("series %s resolved to %T, want *reporter.Exec", s.Reporter.Name(), s.Reporter)
		}
	}
	rep := rebuilt.Series[0].Reporter.Run(&reporter.Context{Hostname: host, Now: demoStart})
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	// An unknown name fails resolution.
	if _, err := resolve("no.such.reporter"); err == nil {
		t.Fatal("phantom name resolved")
	}
}

// TestRepositoryResolverRefusesTamper: a modified script blocks resolver
// construction entirely.
func TestRepositoryResolverRefusesTamper(t *testing.T) {
	grid := DemoGrid(1, demoStart.Add(-24*time.Hour))
	reps := DemoReporters(grid, "login.sitea.example.org")
	dir := t.TempDir()
	if _, err := catalog.WriteRepository(dir, []reporter.Reporter{reps["env"]}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/cluster.admin.env.sh", []byte("#!/bin/sh\nhacked\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := RepositoryResolver(dir); err == nil {
		t.Fatal("tampered repository accepted")
	}
}
