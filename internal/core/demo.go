package core

import (
	"math/rand"
	"time"

	"inca/internal/agent"
	"inca/internal/catalog"
	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
)

// DemoGrid builds a two-resource sample VO ("samplegrid", echoing the
// paper's branch-identifier example) for the standalone tools and the
// quickstart example: one site pair with a software stack, services, and a
// network link between them.
func DemoGrid(seed int64, install time.Time) *gridsim.Grid {
	g := gridsim.New("samplegrid", seed)
	for _, def := range []struct {
		site, host string
	}{
		{"siteA", "login.sitea.example.org"},
		{"siteB", "login.siteb.example.org"},
	} {
		r := g.AddSite(def.site).AddResource(def.host,
			gridsim.Hardware{CPUs: 2, Processor: "Intel Xeon", CPUMHz: 2400, MemoryGB: 4})
		for pkg, ver := range map[string]string{
			"globus": "2.4.3", "mpich": "1.2.5", "atlas": "3.6.0", "pbs": "2.3.16",
		} {
			r.InstallPackage(pkg, ver, install)
		}
		r.AddService("gram-gatekeeper", 2119, gridsim.FailureModel{})
		r.AddService("gridftp", 2811, gridsim.FailureModel{})
		r.AddService("ssh", 22, gridsim.FailureModel{})
		r.SetEnv("GLOBUS_LOCATION", "/usr/local/globus")
		r.AddSoftEnv("@samplegrid", "+globus +mpich")
	}
	g.SetLink("login.sitea.example.org", "login.siteb.example.org", 990, 0.10, 0.02)
	g.SetLink("login.siteb.example.org", "login.sitea.example.org", 930, 0.10, 0.02)
	return g
}

// DemoReporters returns the catalog reporters applicable to one demo-grid
// resource, keyed by a short name usable from the command line.
func DemoReporters(g *gridsim.Grid, host string) map[string]reporter.Reporter {
	res, ok := g.Resource(host)
	if !ok {
		return nil
	}
	var other string
	for _, r := range g.Resources() {
		if r.Host != host {
			other = r.Host
		}
	}
	out := map[string]reporter.Reporter{}
	for _, p := range res.Packages() {
		out["version."+p.Name] = &catalog.VersionReporter{Resource: res, Package: p.Name}
		out["unit."+p.Name] = &catalog.UnitTestReporter{Resource: res, Package: p.Name}
	}
	for _, s := range res.Services() {
		out["service."+s.Name] = &catalog.ServiceReporter{Resource: res, Service: s.Name}
		if other != "" {
			out["xsite."+s.Name] = &catalog.CrossSiteReporter{Grid: g, Source: res, DestHost: other, Service: s.Name}
		}
	}
	out["env"] = &catalog.EnvReporter{Resource: res}
	out["softenv"] = &catalog.SoftEnvReporter{Resource: res}
	if other != "" {
		out["pathload"] = &catalog.BandwidthReporter{Grid: g, Source: res, DestHost: other, Tool: catalog.Pathload}
		out["spruce"] = &catalog.BandwidthReporter{Grid: g, Source: res, DestHost: other, Tool: catalog.Spruce}
	}
	out["grasp"] = &catalog.BenchmarkReporter{Resource: res, Kind: "flops"}
	return out
}

// DemoSpec assembles an every-minute specification file over the demo
// reporters for a resource — the standalone agent daemon's default
// configuration.
func DemoSpec(g *gridsim.Grid, host string, rng *rand.Rand) (agent.Spec, error) {
	res, ok := g.Resource(host)
	if !ok {
		return agent.Spec{}, errUnknownHost(host)
	}
	spec := agent.Spec{
		Resource:     host,
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
	}
	names := make([]string, 0)
	reps := DemoReporters(g, host)
	for name := range reps {
		names = append(names, name)
	}
	// Deterministic order for reproducible specs.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		r := reps[name]
		limit := 30 * time.Second
		if timed, ok := r.(reporter.Timed); ok {
			// Leave slack above the probe's nominal run time so the limit
			// only fires on genuine hangs.
			if d := timed.RunDuration(nil); 2*d > limit {
				limit = 2 * d
			}
		}
		spec.Series = append(spec.Series, agent.Series{
			Reporter: r,
			Branch:   BranchInVO(g.Name, r.Name(), host, res.Site.Name),
			Cron:     schedule.MustParseCron("* * * * *"),
			Limit:    limit,
			Args:     []report.Arg{},
		})
	}
	_ = rng
	return spec, nil
}

type errUnknownHost string

func (e errUnknownHost) Error() string { return "core: unknown demo host " + string(e) }
