package core

import (
	"fmt"
	"strings"

	"inca/internal/agent"
	"inca/internal/catalog"
	"inca/internal/gridsim"
	"inca/internal/reporter"
)

// CatalogResolver reconstructs catalog reporters from their structured
// names for one resource — the receiving half of central configuration:
// the server ships a specification document naming reporters, schedules,
// limits and branches; the agent resolves each name into a local probe.
//
// Recognized forms:
//
//	<cat>.version.<pkg>          e.g. grid.version.globus
//	<cat>.unit.<pkg>             e.g. development.unit.mpich
//	grid.service.<svc>
//	grid.xsite.<svc>.to.<host>
//	grid.network.<tool>.to.<host>
//	grid.benchmark.grasp.<kind>
//	cluster.admin.env / cluster.admin.softenv
func CatalogResolver(grid *gridsim.Grid, host string) agent.Resolver {
	return func(name string) (reporter.Reporter, error) {
		res, ok := grid.Resource(host)
		if !ok {
			return nil, fmt.Errorf("core: unknown resource %s", host)
		}
		switch name {
		case "cluster.admin.env":
			return &catalog.EnvReporter{Resource: res}, nil
		case "cluster.admin.softenv":
			return &catalog.SoftEnvReporter{Resource: res}, nil
		}
		parts := strings.SplitN(name, ".", 3)
		if len(parts) < 3 {
			return nil, fmt.Errorf("core: unresolvable reporter name %q", name)
		}
		cat, kind, rest := parts[0], parts[1], parts[2]
		switch kind {
		case "version":
			return &catalog.VersionReporter{Resource: res, Package: rest}, nil
		case "unit":
			return &catalog.UnitTestReporter{Resource: res, Package: rest}, nil
		case "service":
			if cat != "grid" {
				return nil, fmt.Errorf("core: unresolvable reporter name %q", name)
			}
			return &catalog.ServiceReporter{Resource: res, Service: rest}, nil
		case "xsite":
			svc, dest, err := splitDest(rest)
			if err != nil {
				return nil, fmt.Errorf("core: %q: %w", name, err)
			}
			return &catalog.CrossSiteReporter{Grid: grid, Source: res, DestHost: dest, Service: svc}, nil
		case "network":
			tool, dest, err := splitDest(rest)
			if err != nil {
				return nil, fmt.Errorf("core: %q: %w", name, err)
			}
			return &catalog.BandwidthReporter{Grid: grid, Source: res, DestHost: dest, Tool: catalog.NetworkTool(tool)}, nil
		case "benchmark":
			const prefix = "grasp."
			if !strings.HasPrefix(rest, prefix) {
				return nil, fmt.Errorf("core: unresolvable benchmark %q", name)
			}
			return &catalog.BenchmarkReporter{Resource: res, Kind: strings.TrimPrefix(rest, prefix)}, nil
		default:
			return nil, fmt.Errorf("core: unresolvable reporter name %q", name)
		}
	}
}

// splitDest splits "<what>.to.<host>" into its parts.
func splitDest(s string) (what, dest string, err error) {
	i := strings.Index(s, ".to.")
	if i < 0 {
		return "", "", fmt.Errorf("missing .to. destination")
	}
	what, dest = s[:i], s[i+len(".to."):]
	if what == "" || dest == "" {
		return "", "", fmt.Errorf("empty probe or destination")
	}
	return what, dest, nil
}

// RoundTripSpec is a convenience used by tests and the agent daemon: it
// re-materializes a specification document into a runnable Spec for host.
func RoundTripSpec(grid *gridsim.Grid, def agent.SpecDef) (agent.Spec, error) {
	return agent.BuildFromDef(def, CatalogResolver(grid, def.Resource))
}

// RepositoryResolver resolves reporter names against an installed script
// repository (catalog.WriteRepository's output): each series runs the
// checksummed standalone script through /bin/sh — the deployed system's
// actual execution model, with scripts instead of in-process probes. The
// repository is verified once at resolver construction.
func RepositoryResolver(dir string) (agent.Resolver, error) {
	loaded, err := catalog.LoadRepository(dir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]reporter.Reporter, len(loaded))
	for _, r := range loaded {
		byName[r.Name()] = r
	}
	return func(name string) (reporter.Reporter, error) {
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("core: reporter %s not in repository %s", name, dir)
		}
		return r, nil
	}, nil
}
