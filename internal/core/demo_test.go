package core

import (
	"math/rand"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/simtime"
)

var demoStart = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func TestDemoGridShape(t *testing.T) {
	g := DemoGrid(1, demoStart.Add(-24*time.Hour))
	if g.Name != "samplegrid" {
		t.Fatalf("name = %q", g.Name)
	}
	if len(g.Sites()) != 2 || len(g.Resources()) != 2 {
		t.Fatalf("sites/resources = %d/%d", len(g.Sites()), len(g.Resources()))
	}
	a, ok := g.Resource("login.sitea.example.org")
	if !ok {
		t.Fatal("siteA resource missing")
	}
	for _, pkg := range []string{"globus", "mpich", "atlas", "pbs"} {
		if _, ok := a.Package(pkg); !ok {
			t.Fatalf("package %s missing", pkg)
		}
	}
	for _, svc := range []string{"gram-gatekeeper", "gridftp", "ssh"} {
		if up, reason := a.ServiceUp(svc, demoStart); !up {
			t.Fatalf("%s down: %s", svc, reason)
		}
	}
	if _, ok := g.Link("login.sitea.example.org", "login.siteb.example.org"); !ok {
		t.Fatal("a→b link missing")
	}
	if _, ok := g.Link("login.siteb.example.org", "login.sitea.example.org"); !ok {
		t.Fatal("b→a link missing")
	}
}

func TestDemoReporters(t *testing.T) {
	g := DemoGrid(1, demoStart.Add(-24*time.Hour))
	reps := DemoReporters(g, "login.sitea.example.org")
	if reps == nil {
		t.Fatal("nil reporter set")
	}
	for _, want := range []string{"version.globus", "unit.mpich", "service.ssh",
		"xsite.gridftp", "env", "softenv", "pathload", "spruce", "grasp"} {
		if _, ok := reps[want]; !ok {
			t.Fatalf("missing reporter %q", want)
		}
	}
	ctx := &reporter.Context{Hostname: "login.sitea.example.org", Now: demoStart}
	for name, r := range reps {
		if err := reporter.Validate(r, ctx); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if DemoReporters(g, "ghost.example.org") != nil {
		t.Fatal("unknown host returned reporters")
	}
}

func TestDemoSpec(t *testing.T) {
	g := DemoGrid(1, demoStart.Add(-24*time.Hour))
	spec, err := DemoSpec(g, "login.sitea.example.org", rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Resource != "login.sitea.example.org" {
		t.Fatalf("resource = %q", spec.Resource)
	}
	if len(spec.Series) == 0 {
		t.Fatal("empty spec")
	}
	for _, s := range spec.Series {
		if vo, _ := s.Branch.Get("vo"); vo != "samplegrid" {
			t.Fatalf("series %s vo = %q", s.Reporter.Name(), vo)
		}
		if s.Limit <= 0 {
			t.Fatalf("series %s has no limit", s.Reporter.Name())
		}
		// Limits must exceed the reporters' nominal run times (no
		// self-inflicted kills in simulated demo runs).
		if timed, ok := s.Reporter.(reporter.Timed); ok {
			if d := timed.RunDuration(nil); d >= s.Limit {
				t.Fatalf("series %s: duration %v >= limit %v", s.Reporter.Name(), d, s.Limit)
			}
		}
	}
	if _, err := DemoSpec(g, "ghost.example.org", nil); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestDemoSpecRunsWithoutKills(t *testing.T) {
	g := DemoGrid(1, demoStart.Add(-24*time.Hour))
	spec, err := DemoSpec(g, "login.sitea.example.org", nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewSim(demoStart)
	n := 0
	sink := agent.SinkFunc(func(id branch.ID, host string, data []byte) error {
		if _, err := report.Parse(data); err != nil {
			t.Fatalf("unparseable report: %v", err)
		}
		n++
		return nil
	})
	a, err := agent.New(spec, clock, sink, agent.Simulated)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		next, ok := a.Scheduler().NextFire()
		if !ok {
			t.Fatal("no next fire")
		}
		clock.AdvanceTo(next)
		a.Scheduler().RunPending()
	}
	st := a.Stats()
	if st.Killed != 0 {
		t.Fatalf("kills in demo run: %+v", st)
	}
	if st.Failures != 0 {
		t.Fatalf("failures in quiet demo run: %+v", st)
	}
	if n != 2*a.SeriesCount() {
		t.Fatalf("forwarded %d, want %d", n, 2*a.SeriesCount())
	}
}

func TestBranchInVO(t *testing.T) {
	id := BranchInVO("samplegrid", "r.name", "h", "siteA")
	if id.String() != "reporter=r.name,resource=h,site=siteA,vo=samplegrid" {
		t.Fatalf("id = %s", id)
	}
}
