package controller

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/report"
	"inca/internal/wire"
)

var t0 = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func sampleReportXML(t *testing.T) []byte {
	t.Helper()
	r := report.New("probe.x", "1.0", "login1", t0)
	r.Body = report.Branch("probe", "x", report.Leaf("ok", "1"))
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestController(opt Options) (*Controller, *depot.Depot) {
	d := depot.New(depot.NewStreamCache())
	return New(d, opt), d
}

func TestSubmitStoresInDepot(t *testing.T) {
	c, d := newTestController(Options{})
	id := branch.MustParse("probe=x,resource=login1")
	resp, err := c.Submit(id, "login1", sampleReportXML(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReportSize == 0 || resp.CacheSize == 0 || resp.Elapsed <= 0 {
		t.Fatalf("response = %+v", resp)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("report not cached")
	}
	stored, _ := d.Cache().Reports(branch.ID{})
	if !stored[0].ID.Equal(id) {
		t.Fatalf("stored under %s", stored[0].ID)
	}
	if !bytes.Contains(stored[0].XML, []byte("probe")) {
		t.Fatalf("payload mangled: %s", stored[0].XML)
	}
}

func TestAllowlistEnforcement(t *testing.T) {
	c, d := newTestController(Options{Allowlist: []string{"login1", "login2"}})
	id := branch.MustParse("probe=x")
	if _, err := c.Submit(id, "login1", sampleReportXML(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(id, "intruder", sampleReportXML(t)); err == nil {
		t.Fatal("unlisted host accepted")
	}
	accepted, rejected, errs := c.Counters()
	if accepted != 1 || rejected != 1 || errs != 0 {
		t.Fatalf("counters = %d,%d,%d", accepted, rejected, errs)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("rejected report reached the depot")
	}
}

func TestEmptyAllowlistAllowsAll(t *testing.T) {
	c, _ := newTestController(Options{})
	if !c.Allowed("anyone") {
		t.Fatal("empty allowlist should allow all")
	}
}

func TestEnvelopeModeRoundTrip(t *testing.T) {
	for _, mode := range []envelope.Mode{envelope.Body, envelope.Attachment} {
		c, d := newTestController(Options{Mode: mode})
		id := branch.MustParse("probe=x")
		if _, err := c.Submit(id, "h", sampleReportXML(t)); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		stored, _ := d.Cache().Reports(branch.ID{})
		if len(stored) != 1 {
			t.Fatalf("%s: stored %d", mode, len(stored))
		}
		if _, err := report.Parse(stored[0].XML); err != nil {
			t.Fatalf("%s: stored report unparseable: %v", mode, err)
		}
	}
}

func TestHandleWireMessages(t *testing.T) {
	c, d := newTestController(Options{Allowlist: []string{"login1"}})
	ack := c.Handle(&wire.Message{Branch: "probe=x", Hostname: "login1", Report: sampleReportXML(t)}, "127.0.0.1:9")
	if !ack.OK {
		t.Fatalf("ack = %+v", ack)
	}
	ack = c.Handle(&wire.Message{Branch: "probe=x", Hostname: "evil", Report: sampleReportXML(t)}, "127.0.0.1:9")
	if ack.OK {
		t.Fatal("unlisted host acked OK")
	}
	ack = c.Handle(&wire.Message{Branch: "not a branch", Hostname: "login1", Report: sampleReportXML(t)}, "127.0.0.1:9")
	if ack.OK {
		t.Fatal("bad branch acked OK")
	}
	if d.Cache().Count() != 1 {
		t.Fatalf("cache count = %d", d.Cache().Count())
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	c, d := newTestController(Options{Allowlist: []string{"login1"}})
	srv, err := wire.Serve("127.0.0.1:0", c.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := wire.NewClient(srv.Addr())
	defer client.Close()
	for i := 0; i < 10; i++ {
		ack, err := client.Send(&wire.Message{
			Branch:   fmt.Sprintf("probe=p%d,resource=login1", i),
			Hostname: "login1",
			Report:   sampleReportXML(t),
		})
		if err != nil || !ack.OK {
			t.Fatalf("send %d: %v %+v", i, err, ack)
		}
	}
	if d.Cache().Count() != 10 {
		t.Fatalf("cache count = %d", d.Cache().Count())
	}
	if len(c.Responses()) != 10 {
		t.Fatalf("responses = %d", len(c.Responses()))
	}
}

func TestResponseLogAndReset(t *testing.T) {
	fixed := t0.Add(time.Hour)
	c, _ := newTestController(Options{Now: func() time.Time { return fixed }})
	id := branch.MustParse("probe=x")
	if _, err := c.Submit(id, "h", sampleReportXML(t)); err != nil {
		t.Fatal(err)
	}
	rs := c.Responses()
	if len(rs) != 1 || !rs[0].At.Equal(fixed) {
		t.Fatalf("responses = %+v", rs)
	}
	// Returned slice is a copy.
	rs[0].ReportSize = -1
	if c.Responses()[0].ReportSize == -1 {
		t.Fatal("Responses aliases internal log")
	}
	c.ResetResponses()
	if len(c.Responses()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestDepotErrorSurfaces(t *testing.T) {
	c := New(failingDepot{}, Options{})
	if _, err := c.Submit(branch.MustParse("a=1"), "h", sampleReportXML(t)); err == nil {
		t.Fatal("depot error swallowed")
	}
	_, _, errs := c.Counters()
	if errs != 1 {
		t.Fatalf("errs = %d", errs)
	}
}

type failingDepot struct{}

func (failingDepot) StoreEnvelope([]byte) (depot.Receipt, error) {
	return depot.Receipt{}, fmt.Errorf("depot exploded")
}

func TestHandleAuthenticatedHosts(t *testing.T) {
	key := []byte("sdsc-secret")
	c, d := newTestController(Options{
		Allowlist: []string{"login1"},
		Keys:      map[string][]byte{"login1": key},
	})
	rep := sampleReportXML(t)
	// Unsigned message from a keyed host is rejected.
	ack := c.Handle(&wire.Message{Branch: "probe=x", Hostname: "login1", Report: rep}, "r")
	if ack.OK {
		t.Fatal("unsigned message accepted for keyed host")
	}
	// Properly signed message is accepted.
	m := &wire.Message{Branch: "probe=x", Hostname: "login1", Report: rep}
	wire.SignMessage(m, key)
	if ack := c.Handle(m, "r"); !ack.OK {
		t.Fatalf("signed message rejected: %s", ack.Message)
	}
	// Signature under the wrong key is rejected.
	m2 := &wire.Message{Branch: "probe=x", Hostname: "login1", Report: rep}
	wire.SignMessage(m2, []byte("wrong"))
	if ack := c.Handle(m2, "r"); ack.OK {
		t.Fatal("wrongly-signed message accepted")
	}
	if d.Cache().Count() != 1 {
		t.Fatalf("cache count = %d, want 1", d.Cache().Count())
	}
	_, rejected, _ := c.Counters()
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2", rejected)
	}
}

func TestMaxResponsesRingBuffer(t *testing.T) {
	c, _ := newTestController(Options{MaxResponses: 3})
	reportXML := sampleReportXML(t)
	for i := 0; i < 7; i++ {
		id := branch.MustParse(fmt.Sprintf("probe=p%d", i))
		if _, err := c.Submit(id, "h", reportXML); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Responses()
	if len(got) != 3 {
		t.Fatalf("log holds %d responses, want 3", len(got))
	}
	// The window is the most recent three, in arrival order.
	for i, want := range []string{"probe=p4", "probe=p5", "probe=p6"} {
		if got[i].Branch.String() != want {
			t.Fatalf("responses[%d] = %s, want %s", i, got[i].Branch, want)
		}
	}
	// Evicted entries still count as accepted.
	accepted, rejected, errs := c.Counters()
	if accepted != 7 || rejected != 0 || errs != 0 {
		t.Fatalf("counters = %d/%d/%d, want 7/0/0", accepted, rejected, errs)
	}
}

func TestMaxResponsesZeroIsUnbounded(t *testing.T) {
	c, _ := newTestController(Options{})
	reportXML := sampleReportXML(t)
	for i := 0; i < 5; i++ {
		id := branch.MustParse(fmt.Sprintf("probe=p%d", i))
		if _, err := c.Submit(id, "h", reportXML); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Responses(); len(got) != 5 {
		t.Fatalf("log holds %d responses, want 5", len(got))
	}
	accepted, _, _ := c.Counters()
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5", accepted)
	}
}

func TestMaxResponsesResetRestartsWindow(t *testing.T) {
	c, _ := newTestController(Options{MaxResponses: 2})
	reportXML := sampleReportXML(t)
	for i := 0; i < 5; i++ {
		c.Submit(branch.MustParse(fmt.Sprintf("probe=a%d", i)), "h", reportXML)
	}
	c.ResetResponses()
	if accepted, _, _ := c.Counters(); accepted != 0 {
		t.Fatalf("accepted = %d after reset, want 0", accepted)
	}
	if len(c.Responses()) != 0 {
		t.Fatal("responses survived reset")
	}
	// The ring must restart cleanly, not resume from a stale head.
	c.Submit(branch.MustParse("probe=b0"), "h", reportXML)
	got := c.Responses()
	if len(got) != 1 || got[0].Branch.String() != "probe=b0" {
		t.Fatalf("responses after reset = %+v", got)
	}
}
