package controller

import (
	"fmt"
	"testing"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/envelope"
)

func TestShardedDepotValidation(t *testing.T) {
	if _, err := NewShardedDepot(nil, 1); err == nil {
		t.Fatal("empty backend list accepted")
	}
	s, err := NewShardedDepot([]DepotClient{depot.New(depot.NewStreamCache())}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.depth != 1 {
		t.Fatalf("depth = %d", s.depth)
	}
}

func TestShardedDepotRoutesConsistently(t *testing.T) {
	backends := make([]*depot.Depot, 3)
	clients := make([]DepotClient, 3)
	for i := range backends {
		backends[i] = depot.New(depot.NewStreamCache())
		clients[i] = backends[i]
	}
	s, err := NewShardedDepot(clients, 2) // shard on vo + site
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(s, Options{Mode: envelope.Attachment})

	// Ten sites × several probes; everything for one vo/site pair must
	// land on one backend.
	siteBackend := map[string]int{}
	for site := 0; site < 10; site++ {
		for probe := 0; probe < 4; probe++ {
			id := branch.MustParse(fmt.Sprintf("probe=p%d,site=s%d,vo=tg", probe, site))
			if _, err := ctl.Submit(id, "h", sampleReportXML(t)); err != nil {
				t.Fatal(err)
			}
			_, idx := s.BackendFor(id)
			key := fmt.Sprintf("s%d", site)
			if prev, ok := siteBackend[key]; ok && prev != idx {
				t.Fatalf("site %s split across backends %d and %d", key, prev, idx)
			}
			siteBackend[key] = idx
		}
	}
	// Totals conserve.
	total := 0
	for _, b := range backends {
		total += b.Cache().Count()
	}
	if total != 40 {
		t.Fatalf("stored %d, want 40", total)
	}
	counts := s.Counts()
	sum := uint64(0)
	used := 0
	for _, c := range counts {
		sum += c
		if c > 0 {
			used++
		}
	}
	if sum != 40 {
		t.Fatalf("counts sum = %d", sum)
	}
	// With 10 sites over 3 backends, more than one backend must be used.
	if used < 2 {
		t.Fatalf("only %d backend(s) used; no distribution", used)
	}
	// Reports for a site are retrievable from its designated backend.
	for site, idx := range siteBackend {
		prefix := branch.MustParse(fmt.Sprintf("site=%s,vo=tg", site))
		rs, err := backends[idx].Cache().Reports(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 4 {
			t.Fatalf("site %s: %d reports on backend %d", site, len(rs), idx)
		}
	}
}

func TestShardedDepotBadEnvelope(t *testing.T) {
	s, err := NewShardedDepot([]DepotClient{depot.New(depot.NewStreamCache())}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreEnvelope([]byte("junk")); err == nil {
		t.Fatal("junk envelope routed")
	}
}

func TestShardedDepotBackendErrorSurfaces(t *testing.T) {
	s, err := NewShardedDepot([]DepotClient{failingDepot{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := envelope.Encode(envelope.Attachment, branch.MustParse("a=1"), []byte("<r/>"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreEnvelope(env); err == nil {
		t.Fatal("backend error swallowed")
	}
	if s.Counts()[0] != 0 {
		t.Fatal("failed store counted")
	}
}
