// Package controller implements Inca's centralized controller (paper
// Section 3.2.1): it accepts reports from distributed controllers over TCP,
// verifies the sending host against a hostname allowlist, wraps each report
// in an XML envelope addressed by its branch identifier, and forwards the
// envelope to the depot, recording how long the depot takes to accept it —
// the "response time" analyzed in Section 5.2.
package controller

import (
	"fmt"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/metrics"
	"inca/internal/wire"
)

// DepotClient abstracts the depot's web-service store interface: the
// in-process *depot.Depot in simulations, an HTTP client in deployments.
type DepotClient interface {
	StoreEnvelope(data []byte) (depot.Receipt, error)
}

// Response is one recorded depot interaction, the unit of Table 4 and
// Figure 9.
type Response struct {
	At         time.Time
	Branch     branch.ID
	ReportSize int
	CacheSize  int
	// Elapsed is the full time the controller waited on the depot.
	Elapsed time.Duration
	// Unpack and Insert are the depot's phase timings.
	Unpack, Insert time.Duration
}

// Options configures a controller.
type Options struct {
	// Allowlist is the set of hostnames allowed to submit reports. Empty
	// means allow any host (useful in tests); the paper's deployment
	// always configured a list.
	Allowlist []string
	// Mode selects the envelope encoding (Body reproduces the deployed
	// system; Attachment is the paper's planned improvement).
	Mode envelope.Mode
	// Clock stamps response log entries; nil uses real time only for
	// stamps (durations are always wall-clock measurements).
	Now func() time.Time
	// Keys holds per-host shared secrets for report authentication (the
	// paper's future-work security item). A host with a key registered
	// must sign its wire messages; hosts without keys fall back to the
	// allowlist-only check.
	Keys map[string][]byte
	// MaxResponses bounds the in-memory response log. Once that many
	// responses have been recorded the oldest entries are overwritten in
	// ring-buffer fashion, so a long-running controller no longer grows
	// without bound. 0 keeps the unbounded log the experiments use.
	// Counters' accepted total keeps counting evicted entries.
	MaxResponses int
	// Metrics, when set, registers the controller's monotonic counters and
	// envelope handle-latency histogram there. The registry counters never
	// reset — unlike Counters(), whose accepted total ResetResponses()
	// clears between experiment phases — so the two surfaces deliberately
	// stay separate instruments.
	Metrics *metrics.Registry
}

// Controller is the centralized controller.
type Controller struct {
	depot DepotClient
	opt   Options
	allow map[string]bool

	acceptedC *metrics.Counter
	rejectedC *metrics.Counter
	errsC     *metrics.Counter
	handleH   *metrics.Histogram

	mu        sync.Mutex
	responses []Response // ring buffer when opt.MaxResponses > 0
	head      int        // oldest entry once the ring has wrapped
	accepted  int        // accepted since the last reset, evictions included
	rejected  int
	errs      int
}

// New creates a controller forwarding to d.
func New(d DepotClient, opt Options) *Controller {
	reg := opt.Metrics
	c := &Controller{
		depot:     d,
		opt:       opt,
		acceptedC: reg.Counter("inca_controller_accepted_total", "Reports stored in the depot."),
		rejectedC: reg.Counter("inca_controller_rejected_total", "Reports refused: allowlist or signature."),
		errsC:     reg.Counter("inca_controller_depot_errors_total", "Depot store failures."),
		handleH:   reg.Histogram("inca_controller_handle_seconds", "Envelope handle latency: allowlist, wrap, depot store.", nil),
	}
	if len(opt.Allowlist) > 0 {
		c.allow = make(map[string]bool, len(opt.Allowlist))
		for _, h := range opt.Allowlist {
			c.allow[h] = true
		}
	}
	if c.opt.Now == nil {
		c.opt.Now = time.Now
	}
	return c
}

// Allowed reports whether a host may submit reports.
func (c *Controller) Allowed(host string) bool {
	if c.allow == nil {
		return true
	}
	return c.allow[host]
}

// Submit accepts one report: allowlist check, envelope wrap, depot
// forward. It returns the recorded response.
func (c *Controller) Submit(id branch.ID, hostname string, reportXML []byte) (Response, error) {
	handleStart := time.Now()
	defer c.handleH.ObserveSince(handleStart)
	if !c.Allowed(hostname) {
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
		c.rejectedC.Inc()
		return Response{}, fmt.Errorf("controller: host %q not in allowlist", hostname)
	}
	env, err := envelope.Encode(c.opt.Mode, id, reportXML)
	if err != nil {
		return Response{}, err
	}
	start := time.Now()
	rec, err := c.depot.StoreEnvelope(env)
	elapsed := time.Since(start)
	if err != nil {
		c.mu.Lock()
		c.errs++
		c.mu.Unlock()
		c.errsC.Inc()
		return Response{}, fmt.Errorf("controller: depot: %w", err)
	}
	resp := Response{
		At:         c.opt.Now(),
		Branch:     id,
		ReportSize: len(reportXML),
		CacheSize:  rec.CacheSize,
		Elapsed:    elapsed,
		Unpack:     rec.Unpack,
		Insert:     rec.Insert,
	}
	c.acceptedC.Inc()
	c.mu.Lock()
	c.accepted++
	if max := c.opt.MaxResponses; max > 0 && len(c.responses) >= max {
		c.responses[c.head] = resp
		c.head = (c.head + 1) % max
	} else {
		c.responses = append(c.responses, resp)
	}
	c.mu.Unlock()
	return resp, nil
}

// Handle adapts the controller to the wire protocol server, enforcing
// message authentication for hosts with registered keys.
func (c *Controller) Handle(m *wire.Message, remote string) *wire.Ack {
	if key, ok := c.opt.Keys[m.Hostname]; ok {
		if !wire.Verify(m, key) {
			c.mu.Lock()
			c.rejected++
			c.mu.Unlock()
			c.rejectedC.Inc()
			return &wire.Ack{OK: false, Message: "controller: message signature invalid for host " + m.Hostname}
		}
	}
	id, err := branch.Parse(m.Branch)
	if err != nil {
		return &wire.Ack{OK: false, Message: err.Error()}
	}
	if _, err := c.Submit(id, m.Hostname, m.Report); err != nil {
		return &wire.Ack{OK: false, Message: err.Error()}
	}
	return &wire.Ack{OK: true}
}

// Submit implements agent.Sink for in-process deployments.
func (c *Controller) SubmitReport(id branch.ID, hostname string, reportXML []byte) error {
	_, err := c.Submit(id, hostname, reportXML)
	return err
}

// Responses returns a copy of the response log in arrival order. With
// MaxResponses set this is the most recent window; older entries have
// been evicted.
func (c *Controller) Responses() []Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Response, 0, len(c.responses))
	out = append(out, c.responses[c.head:]...)
	out = append(out, c.responses[:c.head]...)
	return out
}

// ResetResponses clears the response log and the accepted total (between
// experiment phases).
func (c *Controller) ResetResponses() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.responses = nil
	c.head = 0
	c.accepted = 0
}

// Counters returns totals: accepted, rejected (allowlist), depot errors.
// Accepted counts every stored report since the last reset, including
// responses a bounded log has since evicted.
func (c *Controller) Counters() (accepted, rejected, errs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accepted, c.rejected, c.errs
}
