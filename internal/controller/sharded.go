package controller

import (
	"fmt"
	"hash/fnv"
	"sync"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/envelope"
)

// ShardedDepot is a DepotClient that distributes envelopes across several
// depot back ends — the paper's Section 6 direction ("work has begun on
// distributing the depot functionality"): response time improvements alone
// "will not significantly increase the depot's ability to service a large
// VO consisting of hundreds of resources".
//
// Routing peeks only at the envelope address (cheap in attachment mode)
// and assigns the identifier's most-general Depth components to a back
// end by stable hash, so all data for one vo/site lands together and
// queries stay local to a shard.
type ShardedDepot struct {
	backends  []DepotClient
	depth     int
	partition func(branch.ID) int // nil → built-in hash

	mu     sync.Mutex
	counts []uint64
}

// NewShardedDepot routes across backends on the depth most-general branch
// components (depth ≤ 0 means 1).
func NewShardedDepot(backends []DepotClient, depth int) (*ShardedDepot, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("controller: sharded depot needs at least one backend")
	}
	if depth <= 0 {
		depth = 1
	}
	return &ShardedDepot{backends: backends, depth: depth, counts: make([]uint64, len(backends))}, nil
}

// NewShardedDepotFunc routes with a caller-supplied partitioner instead
// of the built-in hash — how the federated benchmarks drive in-process
// backends with the same consistent-hash ring the router uses, so an
// in-process measurement exercises the production placement.
func NewShardedDepotFunc(backends []DepotClient, partition func(branch.ID) int) (*ShardedDepot, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("controller: sharded depot needs at least one backend")
	}
	if partition == nil {
		return nil, fmt.Errorf("controller: sharded depot needs a partition function")
	}
	return &ShardedDepot{backends: backends, depth: 1, partition: partition, counts: make([]uint64, len(backends))}, nil
}

// shardFor maps a branch identifier to a backend index.
func (s *ShardedDepot) shardFor(id branch.ID) int {
	if s.partition != nil {
		i := s.partition(id)
		if i < 0 || i >= len(s.backends) {
			return 0
		}
		return i
	}
	path := id.Path()
	if len(path) > s.depth {
		path = path[:s.depth]
	}
	h := fnv.New64a()
	for _, p := range path {
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		h.Write([]byte(p.Value))
		h.Write([]byte{0})
	}
	// FNV-1a is linear in trailing input bytes, which correlates badly
	// with small moduli when keys differ only near the end (site=s0,
	// site=s1, ...); a murmur-style finalizer breaks the structure.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(len(s.backends)))
}

// BackendFor exposes the routing decision (consumers use it to aim their
// queries at the right shard's querying interface).
func (s *ShardedDepot) BackendFor(id branch.ID) (DepotClient, int) {
	i := s.shardFor(id)
	return s.backends[i], i
}

// StoreEnvelope implements DepotClient.
func (s *ShardedDepot) StoreEnvelope(data []byte) (depot.Receipt, error) {
	id, err := envelope.Address(data)
	if err != nil {
		return depot.Receipt{}, fmt.Errorf("controller: sharded depot: %w", err)
	}
	i := s.shardFor(id)
	rec, err := s.backends[i].StoreEnvelope(data)
	if err != nil {
		return rec, fmt.Errorf("controller: shard %d: %w", i, err)
	}
	s.mu.Lock()
	s.counts[i]++
	s.mu.Unlock()
	return rec, nil
}

// Counts returns how many envelopes each backend has stored.
func (s *ShardedDepot) Counts() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.counts...)
}
