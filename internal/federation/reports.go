package federation

import (
	"bytes"
	"fmt"

	"inca/internal/branch"
)

// StoredReport is one report recovered from a /reports response — the
// unit the rebalance migration re-envelopes and re-stores on a branch's
// new owner.
type StoredReport struct {
	ID  branch.ID
	XML []byte
}

// ParseReports decodes a /reports response body into its stored reports.
// The branch attribute is XML-escaped by the producer (so '>' cannot
// appear before the open tag closes), which makes the inner report XML
// exactly the bytes between the open tag's '>' and the closing
// </stored>.
func ParseReports(body []byte) ([]StoredReport, error) {
	chunks, err := splitReports(body, "")
	if err != nil {
		return nil, err
	}
	out := make([]StoredReport, 0, len(chunks))
	for _, c := range chunks {
		gt := bytes.IndexByte(c.raw, '>')
		if gt < 0 || !bytes.HasSuffix(c.raw, []byte("</stored>")) {
			return nil, fmt.Errorf("federation: malformed stored element")
		}
		inner := c.raw[gt+1 : len(c.raw)-len("</stored>")]
		// c.path is general→specific; ID.Pairs lead with the most specific.
		pairs := make([]branch.Pair, len(c.path))
		for i, p := range c.path {
			pairs[len(c.path)-1-i] = p
		}
		out = append(out, StoredReport{ID: branch.New(pairs...), XML: inner})
	}
	return out, nil
}
