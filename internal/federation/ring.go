// Package federation distributes the branch space across several depot
// processes — the paper's Section 6 direction ("work has begun on
// distributing the depot functionality") taken past the single-process
// ShardedCache: a consistent-hash ring maps branch identifiers to depot
// addresses, a router forwards ingest batches to the owning shard over
// the batched wire protocol, and the query tier scatter-gathers reads
// back into the single-depot document shape.
//
// The ring hashes only a branch identifier's most-general components
// (the same prefix affinity as depot.ShardedCache and
// controller.ShardedDepot), so a reporter's whole vo/site subtree lands
// on one shard: exact queries touch a single process, and membership
// changes move whole subtrees rather than scattering a site's reports.
package federation

import (
	"sort"
	"strconv"

	"inca/internal/branch"
)

// DefaultReplicas is the virtual-node count per member. Consistent
// hashing balances like max/mean ≈ 1 + O(1/√replicas); 256 points keeps
// the skew across shards well under the 20% the ring tests pin.
const DefaultReplicas = 256

// DefaultDepth is the branch-prefix affinity depth: hashing the two
// most-general components (vo, site) spreads sites across shards while
// keeping each site's subtree whole.
const DefaultDepth = 2

// RingOptions configures NewRing.
type RingOptions struct {
	// Replicas is the virtual-node count per member (default
	// DefaultReplicas).
	Replicas int
	// Depth is how many most-general branch components decide placement
	// (default DefaultDepth).
	Depth int
}

func (o *RingOptions) fill() {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.Depth <= 0 {
		o.Depth = DefaultDepth
	}
}

// Ring is an immutable consistent-hash ring over shard names. Membership
// changes return a new ring (With/Without), so a router can swap rings
// atomically while readers keep a coherent view.
type Ring struct {
	members  []string // sorted, unique
	replicas int
	depth    int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over members (duplicates are dropped, order is
// irrelevant — the ring sorts them so equal member sets build equal
// rings).
func NewRing(members []string, opt RingOptions) *Ring {
	opt.fill()
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		members:  uniq,
		replicas: opt.Replicas,
		depth:    opt.Depth,
		points:   make([]ringPoint, 0, len(uniq)*opt.Replicas),
	}
	for i, m := range uniq {
		for v := 0; v < opt.Replicas; v++ {
			h := hashString(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical vnode hashes (vanishingly rare) tie-break on member so
		// equal member sets always build identical rings.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// hashString is FNV-1a 64 with a murmur-style avalanche finalizer — the
// same construction depot.ShardedCache uses, because FNV's trailing-byte
// linearity correlates badly when keys differ only near the end
// (site=s0, site=s1, ...).
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Members returns the sorted member names.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Depth returns the branch-prefix affinity depth.
func (r *Ring) Depth() int { return r.depth }

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// Key returns the placement key for a branch identifier: its most-general
// Depth components in general→specific order. Every identifier in one
// vo/site subtree shares a key, which is the prefix affinity.
func (r *Ring) Key(id branch.ID) string {
	path := id.Path()
	if len(path) > r.depth {
		path = path[:r.depth]
	}
	n := 0
	for _, p := range path {
		n += len(p.Name) + len(p.Value) + 2
	}
	b := make([]byte, 0, n)
	for i, p := range path {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.Name...)
		b = append(b, '=')
		b = append(b, p.Value...)
	}
	return string(b)
}

// Owner returns the member owning id ("" on an empty ring).
func (r *Ring) Owner(id branch.ID) string {
	return r.OwnerKey(r.Key(id))
}

// OwnerIndex returns the index (into Members order) of the member owning
// id, or -1 on an empty ring.
func (r *Ring) OwnerIndex(id branch.ID) int {
	return r.ownerIndexKey(r.Key(id))
}

// OwnerKey returns the member owning a placement key ("" on an empty
// ring).
func (r *Ring) OwnerKey(key string) string {
	i := r.ownerIndexKey(key)
	if i < 0 {
		return ""
	}
	return r.members[i]
}

func (r *Ring) ownerIndexKey(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hashString(key)
	// First vnode at or after h, wrapping past the top of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].member)
}

// With returns a new ring with member added (the receiver is unchanged).
func (r *Ring) With(member string) *Ring {
	return NewRing(append(r.Members(), member), RingOptions{Replicas: r.replicas, Depth: r.depth})
}

// Without returns a new ring with member removed.
func (r *Ring) Without(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(kept, RingOptions{Replicas: r.replicas, Depth: r.depth})
}

// Signature fingerprints the membership and geometry; two rings with the
// same members, replicas and depth share a signature. The query tier
// folds it into composed ETags so a validator minted under one topology
// can never match under another.
func (r *Ring) Signature() string {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		const prime64 = 1099511628211
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	for _, m := range r.members {
		mix(m)
	}
	mix(strconv.Itoa(r.replicas))
	mix(strconv.Itoa(r.depth))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return strconv.FormatUint(h, 36)
}
