package federation

import (
	"fmt"
	"strings"
	"sync"

	"inca/internal/branch"
	"inca/internal/metrics"
	"inca/internal/wire"
)

// Shard names one depot process: the wire address its controller ingests
// on (which doubles as the ring member name) and the HTTP address of its
// querying interface.
type Shard struct {
	// Wire is the shard's distributed-controller TCP address; it is also
	// the shard's identity on the ring.
	Wire string
	// HTTP is the shard's querying-interface address ("" when the shard
	// only ingests). A bare host:port is accepted; the query tier adds
	// the scheme.
	HTTP string
}

// Name returns the shard's ring identity.
func (s Shard) Name() string { return s.Wire }

// BaseURL returns the shard's querying interface URL.
func (s Shard) BaseURL() string {
	if s.HTTP == "" {
		return ""
	}
	if strings.Contains(s.HTTP, "://") {
		return s.HTTP
	}
	return "http://" + s.HTTP
}

// ParseShard parses "wireAddr/httpAddr" (the slash and HTTP part
// optional).
func ParseShard(s string) (Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Shard{}, fmt.Errorf("federation: empty shard spec")
	}
	wireAddr, httpAddr, _ := strings.Cut(s, "/")
	if wireAddr == "" {
		return Shard{}, fmt.Errorf("federation: shard spec %q has no wire address", s)
	}
	return Shard{Wire: wireAddr, HTTP: httpAddr}, nil
}

// ParseShards parses a comma-separated -federate topology list.
func ParseShards(list string) ([]Shard, error) {
	var out []Shard
	for _, part := range strings.Split(list, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		s, err := ParseShard(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("federation: no shards in %q", list)
	}
	return out, nil
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Ring sets the consistent-hash geometry (replicas, affinity depth).
	Ring RingOptions
	// Batch templates the per-shard wire.BatchClient (Metrics is
	// overridden by the router's registry).
	Batch wire.BatchOptions
	// Metrics, when set, registers the router's counters and the shard
	// clients' delivery instruments there.
	Metrics *metrics.Registry
}

// Router is the federation ingest tier: a wire.Handler that accepts the
// agent→controller protocol and forwards every message to the shard
// owning its branch over a per-shard BatchClient. Acknowledging a message
// transfers custody to the router; from there the batch client's
// at-least-once machinery (in-flight tracking, requeue on connection
// loss) carries it to the shard, and a shard's departure harvests its
// queue back for re-routing. Loss is bounded exactly as for one
// BatchClient: only a MaxPending overflow sheds messages.
type Router struct {
	opt RouterOptions

	mu      sync.RWMutex
	ring    *Ring
	shards  map[string]Shard             // by ring name
	clients map[string]*wire.BatchClient // by ring name

	routed     *metrics.Counter
	rerouted   *metrics.Counter
	unroutable *metrics.Counter
}

// NewRouter builds a router over the initial shard topology.
func NewRouter(shards []Shard, opt RouterOptions) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("federation: router needs at least one shard")
	}
	reg := opt.Metrics
	r := &Router{
		opt:        opt,
		shards:     make(map[string]Shard, len(shards)),
		clients:    make(map[string]*wire.BatchClient, len(shards)),
		routed:     reg.Counter("inca_federation_routed_total", "Messages accepted and routed to an owning shard."),
		rerouted:   reg.Counter("inca_federation_rerouted_total", "Harvested messages re-routed after a shard left."),
		unroutable: reg.Counter("inca_federation_unroutable_total", "Messages rejected for an unparseable branch."),
	}
	names := make([]string, 0, len(shards))
	for _, s := range shards {
		if _, dup := r.shards[s.Name()]; dup {
			return nil, fmt.Errorf("federation: duplicate shard %s", s.Name())
		}
		r.shards[s.Name()] = s
		r.clients[s.Name()] = r.newClient(s)
		names = append(names, s.Name())
	}
	r.ring = NewRing(names, opt.Ring)
	return r, nil
}

func (r *Router) newClient(s Shard) *wire.BatchClient {
	bo := r.opt.Batch
	bo.Metrics = r.opt.Metrics
	return wire.NewBatchClient(s.Wire, bo)
}

// Ring returns the current ring (immutable; safe to keep).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Shards returns the current topology in ring-member order — the order
// the query tier composes per-shard ETags in.
func (r *Router) Shards() []Shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Shard, 0, len(r.shards))
	for _, name := range r.ring.Members() {
		out = append(out, r.shards[name])
	}
	return out
}

// Owner returns the shard owning id.
func (r *Router) Owner(id branch.ID) (Shard, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name := r.ring.Owner(id)
	s, ok := r.shards[name]
	return s, ok
}

// Handle implements wire.Handler: parse the branch, enqueue toward its
// owner, acknowledge. The ack is a custody transfer, not an end-to-end
// receipt — the batch client redelivers across shard connection faults,
// so the distributed controller's spool can discard the report.
// Signature verification stays with the shard controllers (the signature
// rides inside the message); the router adds no trust.
func (r *Router) Handle(m *wire.Message, remoteAddr string) *wire.Ack {
	id, err := branch.Parse(m.Branch)
	if err != nil {
		r.unroutable.Inc()
		return &wire.Ack{OK: false, Message: "bad branch: " + err.Error()}
	}
	r.mu.RLock()
	client := r.clients[r.ring.Owner(id)]
	r.mu.RUnlock()
	if client == nil {
		r.unroutable.Inc()
		return &wire.Ack{OK: false, Message: "no shard owns " + m.Branch}
	}
	// Enqueue surfaces *previous* asynchronous failures; the batch client
	// still holds this message either way, so the ack stands.
	client.Enqueue(m)
	r.routed.Inc()
	return &wire.Ack{OK: true}
}

// Join adds a shard to the ring. Only the ring ranges the new member
// claims move; everything else keeps its owner (see TestRingRemapFraction
// for the ≈1/N bound). Data migration for the moved ranges is the query
// tier's business — the router only changes where new ingest lands.
func (r *Router) Join(s Shard) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.shards[s.Name()]; dup {
		return fmt.Errorf("federation: shard %s already joined", s.Name())
	}
	r.shards[s.Name()] = s
	r.clients[s.Name()] = r.newClient(s)
	r.ring = r.ring.With(s.Name())
	return nil
}

// DrainShard is the drain barrier for a graceful leave: it blocks until
// every message accepted for the shard has been written and acknowledged
// (or returns the delivery error for a shard that cannot be reached).
func (r *Router) DrainShard(name string) error {
	r.mu.RLock()
	client := r.clients[name]
	r.mu.RUnlock()
	if client == nil {
		return fmt.Errorf("federation: unknown shard %s", name)
	}
	return client.Drain()
}

// Leave removes a shard. New ingest for its ranges re-routes to the
// survivors immediately, and every message still queued toward the
// departed shard — including batches written but never acknowledged, the
// kill-mid-stream case — is harvested and re-enqueued through the new
// ring, so no accepted report is lost with the shard. Call DrainShard
// first for a graceful departure; skip it when the shard is already
// dead. Returns how many messages were re-routed.
func (r *Router) Leave(name string) (int, error) {
	r.mu.Lock()
	if _, ok := r.shards[name]; !ok {
		r.mu.Unlock()
		return 0, fmt.Errorf("federation: unknown shard %s", name)
	}
	if len(r.shards) == 1 {
		r.mu.Unlock()
		return 0, fmt.Errorf("federation: cannot remove the last shard")
	}
	client := r.clients[name]
	delete(r.shards, name)
	delete(r.clients, name)
	r.ring = r.ring.Without(name)
	r.mu.Unlock()

	// Harvest outside the lock: CloseHarvest may wait out an ack reader.
	orphans := client.CloseHarvest()
	moved := 0
	for _, m := range orphans {
		id, err := branch.Parse(m.Branch)
		if err != nil {
			continue // was unroutable all along
		}
		r.mu.RLock()
		next := r.clients[r.ring.Owner(id)]
		r.mu.RUnlock()
		if next != nil {
			next.Enqueue(m)
			moved++
		}
	}
	r.rerouted.Add(uint64(moved))
	return moved, nil
}

// Flush pushes every shard client's pending partial batch.
func (r *Router) Flush() error {
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Drain blocks until every accepted message has been acknowledged by its
// shard (the router-wide barrier the smoke tests and shutdown use).
func (r *Router) Drain() error {
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close drains and closes every shard client.
func (r *Router) Close() error {
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Router) snapshotClients() []*wire.BatchClient {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*wire.BatchClient, 0, len(r.clients))
	for _, c := range r.clients {
		out = append(out, c)
	}
	return out
}

// ShardStats is one shard's delivery accounting.
type ShardStats struct {
	Shard Shard
	Batch wire.BatchStats
}

// RouterStats snapshots the router's routing and per-shard delivery
// counters.
type RouterStats struct {
	Routed     uint64
	Rerouted   uint64
	Unroutable uint64
	Shards     []ShardStats
}

// Stats returns a snapshot of routing and delivery accounting, shards in
// ring-member order.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := RouterStats{
		Routed:     r.routed.Value(),
		Rerouted:   r.rerouted.Value(),
		Unroutable: r.unroutable.Value(),
	}
	for _, name := range r.ring.Members() {
		st.Shards = append(st.Shards, ShardStats{Shard: r.shards[name], Batch: r.clients[name].Stats()})
	}
	return st
}
