package federation

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/metrics"
	"inca/internal/simtime"
	"inca/internal/wire"
)

// Shard names one depot slice: the primary process's wire and HTTP
// addresses, plus (optionally) a follower process the router tees the
// same wire stream to — the per-shard replica that survives the primary
// (DESIGN.md §5i).
type Shard struct {
	// ID is the shard's ring identity. It is empty until a promotion:
	// ring placement must survive a primary's death, so when the follower
	// takes over, the departed primary's name is pinned here while Wire
	// and HTTP flip to the follower's addresses. Name() folds this in.
	ID string
	// Wire is the primary's distributed-controller TCP address; until a
	// promotion it doubles as the shard's identity on the ring.
	Wire string
	// HTTP is the primary's querying-interface address ("" when the
	// shard only ingests). A bare host:port is accepted; the query tier
	// adds the scheme.
	HTTP string
	// ReplicaWire is the follower's wire address ("" = no follower). The
	// router replays every accepted message for this shard to it.
	ReplicaWire string
	// ReplicaHTTP is the follower's querying-interface address; when set
	// the query tier may prefer it for reads.
	ReplicaHTTP string
}

// Name returns the shard's ring identity — stable across promotion.
func (s Shard) Name() string {
	if s.ID != "" {
		return s.ID
	}
	return s.Wire
}

// HasReplica reports whether a follower is attached.
func (s Shard) HasReplica() bool { return s.ReplicaWire != "" }

func baseURL(httpAddr string) string {
	if httpAddr == "" {
		return ""
	}
	if strings.Contains(httpAddr, "://") {
		return httpAddr
	}
	return "http://" + httpAddr
}

// BaseURL returns the primary's querying interface URL.
func (s Shard) BaseURL() string { return baseURL(s.HTTP) }

// ReplicaBaseURL returns the follower's querying interface URL ("" when
// the shard has no follower or it only ingests).
func (s Shard) ReplicaBaseURL() string { return baseURL(s.ReplicaHTTP) }

// ParseShard parses "wireAddr/httpAddr[=replicaWire/replicaHTTP]" (the
// slashes, HTTP parts, and the whole follower suffix optional).
func ParseShard(s string) (Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Shard{}, fmt.Errorf("federation: empty shard spec")
	}
	primary, replica, hasReplica := strings.Cut(s, "=")
	wireAddr, httpAddr, _ := strings.Cut(primary, "/")
	if wireAddr == "" {
		return Shard{}, fmt.Errorf("federation: shard spec %q has no wire address", s)
	}
	sh := Shard{Wire: wireAddr, HTTP: httpAddr}
	if hasReplica {
		rw, rh, _ := strings.Cut(replica, "/")
		if rw == "" {
			return Shard{}, fmt.Errorf("federation: shard spec %q has an empty follower", s)
		}
		sh.ReplicaWire, sh.ReplicaHTTP = rw, rh
	}
	return sh, nil
}

// ApplyReplicas assigns followers to shards positionally from a
// comma-separated "-replicate" list ("-" or an empty entry leaves that
// shard without a follower). The list length must match the shard count.
func ApplyReplicas(shards []Shard, list string) error {
	if strings.TrimSpace(list) == "" {
		return nil
	}
	parts := strings.Split(list, ",")
	if len(parts) != len(shards) {
		return fmt.Errorf("federation: -replicate lists %d followers for %d shards", len(parts), len(shards))
	}
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" || part == "-" {
			continue
		}
		if shards[i].HasReplica() {
			return fmt.Errorf("federation: shard %s already has a follower", shards[i].Name())
		}
		rw, rh, _ := strings.Cut(part, "/")
		if rw == "" {
			return fmt.Errorf("federation: follower spec %q has no wire address", part)
		}
		shards[i].ReplicaWire, shards[i].ReplicaHTTP = rw, rh
	}
	return nil
}

// ParseShards parses a comma-separated -federate topology list.
func ParseShards(list string) ([]Shard, error) {
	var out []Shard
	for _, part := range strings.Split(list, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		s, err := ParseShard(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("federation: no shards in %q", list)
	}
	return out, nil
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Ring sets the consistent-hash geometry (replicas, affinity depth).
	Ring RingOptions
	// Batch templates the per-shard wire.BatchClient (Metrics is
	// overridden by the router's registry).
	Batch wire.BatchOptions
	// Metrics, when set, registers the router's counters and the shard
	// clients' delivery instruments there.
	Metrics *metrics.Registry
	// Clock drives the re-route retry backoff and its deadline. Nil uses
	// the wall clock; tests inject a simtime.Sim so retry exhaustion runs
	// without real sleeps.
	Clock simtime.Clock
}

// Router is the federation ingest tier: a wire.Handler that accepts the
// agent→controller protocol and forwards every message to the shard
// owning its branch over a per-shard BatchClient. Acknowledging a message
// transfers custody to the router; from there the batch client's
// at-least-once machinery (in-flight tracking, requeue on connection
// loss) carries it to the shard, and a shard's departure harvests its
// queue back for re-routing. Loss is bounded exactly as for one
// BatchClient: only a MaxPending overflow sheds messages.
type Router struct {
	opt   RouterOptions
	clock simtime.Clock

	// backoffMu guards backoffRNG: concurrent Leave/Promote calls
	// re-route orphans in parallel, each jittering its own ladder.
	backoffMu  sync.Mutex
	backoffRNG *rand.Rand

	mu       sync.RWMutex
	ring     *Ring
	shards   map[string]Shard             // by ring name
	clients  map[string]*wire.BatchClient // primary, by ring name
	replicas map[string]*wire.BatchClient // follower tee, by ring name
	epoch    uint64                       // bumps on replica topology changes the ring signature cannot see

	// reWG tracks in-flight orphan re-routes (Leave/Promote): Drain waits
	// them out first, so a message harvested but not yet re-enqueued can
	// never slip past the router-wide barrier.
	reWG sync.WaitGroup

	routed         *metrics.Counter
	rerouted       *metrics.Counter
	unroutable     *metrics.Counter
	refused        *metrics.Counter
	rerouteDropped *metrics.Counter
	replicaShed    *metrics.Counter
	promotions     *metrics.Counter
}

// NewRouter builds a router over the initial shard topology.
func NewRouter(shards []Shard, opt RouterOptions) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("federation: router needs at least one shard")
	}
	reg := opt.Metrics
	clock := opt.Clock
	if clock == nil {
		clock = simtime.Real{}
	}
	r := &Router{
		opt:            opt,
		clock:          clock,
		backoffRNG:     rand.New(rand.NewSource(2004)),
		shards:         make(map[string]Shard, len(shards)),
		clients:        make(map[string]*wire.BatchClient, len(shards)),
		replicas:       make(map[string]*wire.BatchClient),
		routed:         reg.Counter("inca_federation_routed_total", "Messages accepted and routed to an owning shard."),
		rerouted:       reg.Counter("inca_federation_rerouted_total", "Harvested messages re-routed after a shard left."),
		unroutable:     reg.Counter("inca_federation_unroutable_total", "Messages refused or dropped for an unparseable branch or missing owner."),
		refused:        reg.Counter("inca_federation_refused_total", "Messages nacked because the owning shard's backlog was full — custody stayed with the sender."),
		rerouteDropped: reg.Counter("inca_federation_reroute_dropped_total", "Harvested messages dropped because no successor could accept them before the re-route deadline."),
		replicaShed:    reg.Counter("inca_federation_replica_shed_total", "Replication copies refused by a follower client's full backlog — the follower lags until catch-up."),
		promotions:     reg.Counter("inca_federation_promotions_total", "Followers promoted to primary."),
	}
	names := make([]string, 0, len(shards))
	for _, s := range shards {
		if _, dup := r.shards[s.Name()]; dup {
			return nil, fmt.Errorf("federation: duplicate shard %s", s.Name())
		}
		r.shards[s.Name()] = s
		r.clients[s.Name()] = r.newClient(s.Wire)
		if s.HasReplica() {
			r.replicas[s.Name()] = r.newClient(s.ReplicaWire)
		}
		names = append(names, s.Name())
	}
	r.ring = NewRing(names, opt.Ring)
	return r, nil
}

func (r *Router) newClient(addr string) *wire.BatchClient {
	bo := r.opt.Batch
	bo.Metrics = r.opt.Metrics
	return wire.NewBatchClient(addr, bo)
}

// Ring returns the current ring (immutable; safe to keep).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Shards returns the current topology in ring-member order — the order
// the query tier composes per-shard ETags in.
func (r *Router) Shards() []Shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Shard, 0, len(r.shards))
	for _, name := range r.ring.Members() {
		out = append(out, r.shards[name])
	}
	return out
}

// Owner returns the shard owning id.
func (r *Router) Owner(id branch.ID) (Shard, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name := r.ring.Owner(id)
	s, ok := r.shards[name]
	return s, ok
}

// Shard returns the shard registered under a ring name.
func (r *Router) Shard(name string) (Shard, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.shards[name]
	return s, ok
}

// Epoch counts replica-topology changes (promotions, follower attaches)
// that the ring signature cannot see: ring membership is stable across a
// promotion by design, yet the shard's read state moves to a different
// process whose generation counters need not align.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Signature fingerprints everything a composed validator depends on: the
// ring membership plus the replica epoch. The query tier composes ETags
// and feed cursors under this, so a promotion — invisible to the ring —
// still invalidates every validator minted before it instead of letting
// a follower's unrelated generation numbers falsely revalidate.
func (r *Router) Signature() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.epoch == 0 {
		return r.ring.Signature()
	}
	return r.ring.Signature() + "p" + strconv.FormatUint(r.epoch, 10)
}

// Handle implements wire.Handler: parse the branch, enqueue toward its
// owner, acknowledge. The ack is a custody transfer, not an end-to-end
// receipt — the batch client redelivers across shard connection faults,
// so the distributed controller's spool can discard the report.
// Signature verification stays with the shard controllers (the signature
// rides inside the message); the router adds no trust.
func (r *Router) Handle(m *wire.Message, remoteAddr string) *wire.Ack {
	id, err := branch.Parse(m.Branch)
	if err != nil {
		r.unroutable.Inc()
		return &wire.Ack{OK: false, Message: "bad branch: " + err.Error()}
	}
	r.mu.RLock()
	owner := r.ring.Owner(id)
	client := r.clients[owner]
	replica := r.replicas[owner]
	r.mu.RUnlock()
	if client == nil {
		r.unroutable.Inc()
		return &wire.Ack{OK: false, Message: "no shard owns " + m.Branch}
	}
	// EnqueueCustody never sheds: past MaxPending it refuses this message
	// instead of silently dropping an older one that was already acked.
	// A refusal nacks the sender — the agent's spool keeps custody and
	// retries — so an OK ack always means the router holds the message.
	if err := client.EnqueueCustody(m); err != nil {
		r.refused.Inc()
		return &wire.Ack{OK: false, Message: "shard " + owner + " backlog: " + err.Error()}
	}
	// Tee the same message to the follower. Its client carries the same
	// at-least-once contract toward the replica; a full follower backlog
	// is counted (the follower lags until catch-up) but never blocks the
	// primary ack — replication must not couple ingest availability to
	// the follower's health.
	if replica != nil {
		if err := replica.EnqueueCustody(m); err != nil {
			r.replicaShed.Inc()
		}
	}
	r.routed.Inc()
	return &wire.Ack{OK: true}
}

// Join adds a shard to the ring. Only the ring ranges the new member
// claims move; everything else keeps its owner (see TestRingRemapFraction
// for the ≈1/N bound). Data migration for the moved ranges is the query
// tier's business — the router only changes where new ingest lands.
func (r *Router) Join(s Shard) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.shards[s.Name()]; dup {
		return fmt.Errorf("federation: shard %s already joined", s.Name())
	}
	r.shards[s.Name()] = s
	r.clients[s.Name()] = r.newClient(s.Wire)
	if s.HasReplica() {
		r.replicas[s.Name()] = r.newClient(s.ReplicaWire)
	}
	r.ring = r.ring.With(s.Name())
	return nil
}

// AttachReplica wires a follower to an existing shard at runtime: the
// router starts teeing the shard's wire stream to it immediately. The
// follower's history before this moment is empty — run the catch-up copy
// (the §5f migration path: fetch the primary's /reports, re-store on the
// follower) to close that gap. Bumps the replica epoch: with follower
// reads on, validators minted against the primary must not revalidate
// against the freshly attached follower.
func (r *Router) AttachReplica(name, replicaWire, replicaHTTP string) error {
	if replicaWire == "" {
		return fmt.Errorf("federation: follower needs a wire address")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shards[name]
	if !ok {
		return fmt.Errorf("federation: unknown shard %s", name)
	}
	if s.HasReplica() {
		return fmt.Errorf("federation: shard %s already has follower %s", name, s.ReplicaWire)
	}
	s.ReplicaWire, s.ReplicaHTTP = replicaWire, replicaHTTP
	r.shards[name] = s
	r.replicas[name] = r.newClient(replicaWire)
	r.epoch++
	return nil
}

// Promote fails a shard's slice over to its follower: the follower's
// addresses become the shard's, its tee client becomes the primary
// client, and the ring does not move — the departed primary's name stays
// the ring identity (Shard.ID), so no branch changes owner and no data
// migrates. Every message still queued toward the dead primary is
// harvested and re-enqueued to the promoted follower (the at-least-once
// custody chain across the failover). Returns the promoted shard and how
// many harvested messages were re-enqueued.
func (r *Router) Promote(name string) (Shard, int, error) {
	r.mu.Lock()
	s, ok := r.shards[name]
	if !ok {
		r.mu.Unlock()
		return Shard{}, 0, fmt.Errorf("federation: unknown shard %s", name)
	}
	if !s.HasReplica() {
		r.mu.Unlock()
		return Shard{}, 0, fmt.Errorf("federation: shard %s has no follower to promote", name)
	}
	old := r.clients[name]
	s.ID = s.Name() // pin the ring identity before the addresses flip
	s.Wire, s.HTTP = s.ReplicaWire, s.ReplicaHTTP
	s.ReplicaWire, s.ReplicaHTTP = "", ""
	r.shards[name] = s
	r.clients[name] = r.replicas[name] // the tee client already points at the follower
	delete(r.replicas, name)
	r.epoch++
	r.promotions.Inc()
	r.reWG.Add(1)
	r.mu.Unlock()
	defer r.reWG.Done()

	// Everything the dead primary never acknowledged goes to the promoted
	// follower — same slice, same ring owner, new process.
	orphans := old.CloseHarvest()
	moved := r.rerouteOrphans(name, orphans)
	return s, moved, nil
}

// DrainShard is the drain barrier for a graceful leave: it blocks until
// every message accepted for the shard has been written and acknowledged
// (or returns the delivery error for a shard that cannot be reached).
func (r *Router) DrainShard(name string) error {
	r.mu.RLock()
	client := r.clients[name]
	r.mu.RUnlock()
	if client == nil {
		return fmt.Errorf("federation: unknown shard %s", name)
	}
	return client.Drain()
}

// rerouteDeadline bounds how long a re-route retries against successors
// whose backlogs are full before counting the message as dropped.
const rerouteDeadline = 10 * time.Second

// Re-route retries back off exponentially with jitter instead of
// polling on a fixed short sleep: a successor refusing because its
// backlog is full needs time to drain, and hammering it every few
// milliseconds burns CPU (and, with many concurrent re-routes,
// synchronizes the retries into thundering herds). The ladder starts at
// rerouteBackoffBase, doubles per refusal, caps at rerouteBackoffCap,
// and each sleep adds up to half its length in jitter.
const (
	rerouteBackoffBase = 5 * time.Millisecond
	rerouteBackoffCap  = 250 * time.Millisecond
)

// backoffSleep sleeps on the router's clock for d plus jitter in
// [0, d/2], and returns the next rung of the ladder.
func (r *Router) backoffSleep(d time.Duration) (next time.Duration) {
	r.backoffMu.Lock()
	jitter := time.Duration(r.backoffRNG.Int63n(int64(d/2) + 1))
	r.backoffMu.Unlock()
	r.clock.Sleep(d + jitter)
	if d >= rerouteBackoffCap {
		return rerouteBackoffCap
	}
	if d *= 2; d > rerouteBackoffCap {
		return rerouteBackoffCap
	}
	return d
}

// rerouteOrphans re-enqueues harvested messages through the current ring
// with full accounting: every orphan ends as exactly one of rerouted
// (moved to a live successor's queue), unroutable (unparseable branch or
// no owner — counted, never silently skipped), or rerouteDropped (no
// successor could accept it before the deadline). A successor whose
// backlog is full is flushed and retried; a successor that closed under
// us (concurrent Leave) is re-resolved through the fresh ring. One log
// line summarizes any loss so it cannot vanish into a counter nobody
// reads. Returns the moved count.
func (r *Router) rerouteOrphans(from string, orphans []*wire.Message) int {
	moved, dropped, bad := 0, 0, 0
	deadline := r.clock.Now().Add(rerouteDeadline)
	for _, m := range orphans {
		id, err := branch.Parse(m.Branch)
		if err != nil {
			// Handle validates branches, so this is defensive — but a
			// defensive skip must still be a counted loss, not a silent one.
			bad++
			continue
		}
		backoff := rerouteBackoffBase
		for {
			r.mu.RLock()
			next := r.clients[r.ring.Owner(id)]
			r.mu.RUnlock()
			if next == nil {
				bad++
				break
			}
			err := next.EnqueueCustody(m)
			if err == nil {
				moved++
				break
			}
			if r.clock.Now().After(deadline) {
				dropped++
				break
			}
			// Backlog full (or the successor left concurrently): kick a
			// flush to open space, back off, and retry; a closed client
			// re-resolves to the new owner on the next pass.
			next.Flush()
			backoff = r.backoffSleep(backoff)
		}
	}
	r.rerouted.Add(uint64(moved))
	r.unroutable.Add(uint64(bad))
	r.rerouteDropped.Add(uint64(dropped))
	if bad+dropped > 0 {
		log.Printf("federation: re-route from %s lost %d of %d harvested messages (%d unroutable, %d dropped after %s of backlog refusals)",
			from, bad+dropped, len(orphans), bad, dropped, rerouteDeadline)
	}
	return moved
}

// Leave removes a shard. New ingest for its ranges re-routes to the
// survivors immediately, and every message still queued toward the
// departed shard — including batches written but never acknowledged, the
// kill-mid-stream case — is harvested and re-enqueued through the new
// ring. Call DrainShard first for a graceful departure; skip it when the
// shard is already dead; prefer Promote when the shard has a follower
// (the slice then fails over instead of redistributing). Returns how
// many messages were re-routed and how many were lost in the attempt
// (unroutable or dropped — zero unless successors were full or gone);
// losses are also counted in Stats, never silent. Re-routed messages are
// enqueued before Leave returns and in-flight re-routes are visible to
// Drain, so a Leave-then-Drain barrier covers them even when shards fail
// back to back.
func (r *Router) Leave(name string) (moved, lost int, err error) {
	r.mu.Lock()
	if _, ok := r.shards[name]; !ok {
		r.mu.Unlock()
		return 0, 0, fmt.Errorf("federation: unknown shard %s", name)
	}
	if len(r.shards) == 1 {
		r.mu.Unlock()
		return 0, 0, fmt.Errorf("federation: cannot remove the last shard")
	}
	client := r.clients[name]
	replica := r.replicas[name]
	delete(r.shards, name)
	delete(r.clients, name)
	delete(r.replicas, name)
	r.ring = r.ring.Without(name)
	r.reWG.Add(1)
	r.mu.Unlock()
	defer r.reWG.Done()

	// The follower leaves with its shard: its queue holds only replication
	// copies of messages whose custody the primary client tracks, so it is
	// closed without re-routing (re-enqueueing copies would double-deliver
	// by design, not by fault).
	if replica != nil {
		replica.CloseHarvest()
	}
	// Harvest outside the lock: CloseHarvest may wait out an ack reader.
	orphans := client.CloseHarvest()
	moved = r.rerouteOrphans(name, orphans)
	return moved, len(orphans) - moved, nil
}

// Flush pushes every shard client's pending partial batch.
func (r *Router) Flush() error {
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Drain blocks until every accepted message has been acknowledged by its
// shard (the router-wide barrier the smoke tests and shutdown use).
// In-flight orphan re-routes are waited out first: a message harvested by
// a concurrent Leave or Promote lands in a survivor's queue before the
// per-client drains run, so back-to-back shard failures cannot strand a
// message invisible to the barrier.
func (r *Router) Drain() error {
	r.reWG.Wait()
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close drains and closes every shard client, follower tees included.
func (r *Router) Close() error {
	r.reWG.Wait()
	var first error
	for _, c := range r.snapshotClients() {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Router) snapshotClients() []*wire.BatchClient {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*wire.BatchClient, 0, len(r.clients)+len(r.replicas))
	for _, c := range r.clients {
		out = append(out, c)
	}
	for _, c := range r.replicas {
		out = append(out, c)
	}
	return out
}

// ShardStats is one shard's delivery accounting.
type ShardStats struct {
	Shard Shard
	Batch wire.BatchStats
	// Replica is the follower tee's accounting; zero (and HasReplica
	// false) when the shard runs unreplicated.
	Replica    wire.BatchStats
	HasReplica bool
}

// RouterStats snapshots the router's routing and per-shard delivery
// counters. The custody ledger reconciles as: every Handle call ends as
// exactly one of Routed, Refused, or Unroutable; every Routed message
// ends acknowledged by a shard (primary Batch.Acked/Rejected), possibly
// after Rerouted re-accounting on a Leave/Promote, except the explicitly
// counted RerouteDropped. Nothing is lost without a counter moving.
type RouterStats struct {
	Routed         uint64
	Rerouted       uint64
	Unroutable     uint64
	Refused        uint64
	RerouteDropped uint64
	ReplicaShed    uint64
	Promotions     uint64
	Epoch          uint64
	Shards         []ShardStats
}

// Stats returns a snapshot of routing and delivery accounting, shards in
// ring-member order.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := RouterStats{
		Routed:         r.routed.Value(),
		Rerouted:       r.rerouted.Value(),
		Unroutable:     r.unroutable.Value(),
		Refused:        r.refused.Value(),
		RerouteDropped: r.rerouteDropped.Value(),
		ReplicaShed:    r.replicaShed.Value(),
		Promotions:     r.promotions.Value(),
		Epoch:          r.epoch,
	}
	for _, name := range r.ring.Members() {
		ss := ShardStats{Shard: r.shards[name], Batch: r.clients[name].Stats()}
		if rc := r.replicas[name]; rc != nil {
			ss.Replica = rc.Stats()
			ss.HasReplica = true
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}
