package federation

import (
	"fmt"
	"testing"

	"inca/internal/branch"
)

// ringPopulation returns n branch identifiers with distinct site
// prefixes — n distinct placement keys at the default depth.
func ringPopulation(n int) []branch.ID {
	ids := make([]branch.ID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%04d,vo=tg", i%26, i)))
	}
	return ids
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.%d:6323", i+1)
	}
	return names
}

// TestRingDistribution pins the load-balance guarantee: across 1000
// branches the most- and least-loaded shard stay within 20% of the even
// split, for every shard count the benches exercise.
func TestRingDistribution(t *testing.T) {
	ids := ringPopulation(1000)
	for _, shards := range []int{2, 4, 8} {
		r := NewRing(shardNames(shards), RingOptions{})
		counts := make(map[string]int)
		for _, id := range ids {
			owner := r.Owner(id)
			if owner == "" {
				t.Fatalf("shards=%d: no owner for %s", shards, id)
			}
			counts[owner]++
		}
		if len(counts) != shards {
			t.Fatalf("shards=%d: only %d shards received branches", shards, len(counts))
		}
		mean := float64(len(ids)) / float64(shards)
		min, max := len(ids), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if skew := (float64(max) - mean) / mean; skew > 0.20 {
			t.Errorf("shards=%d: max shard %d vs mean %.0f (%.0f%% over)", shards, max, mean, skew*100)
		}
		if skew := (mean - float64(min)) / mean; skew > 0.20 {
			t.Errorf("shards=%d: min shard %d vs mean %.0f (%.0f%% under)", shards, min, mean, skew*100)
		}
	}
}

// TestRingRemapFraction pins the point of consistent hashing: adding or
// removing one member re-routes about 1/N of the keys, not all of them.
func TestRingRemapFraction(t *testing.T) {
	ids := ringPopulation(1000)
	names := shardNames(4)
	r4 := NewRing(names, RingOptions{})

	r5 := r4.With("10.0.0.9:6323")
	moved := 0
	for _, id := range ids {
		if r4.Owner(id) != r5.Owner(id) {
			// A join may only move keys onto the joining shard.
			if got := r5.Owner(id); got != "10.0.0.9:6323" {
				t.Fatalf("join moved %s to %s, not the joining shard", id, got)
			}
			moved++
		}
	}
	want := float64(len(ids)) / 5
	if f := float64(moved); f < 0.5*want || f > 1.5*want {
		t.Errorf("join moved %d of %d keys; want ≈%.0f (1/5)", moved, len(ids), want)
	}

	r3 := r4.Without(names[0])
	moved = 0
	for _, id := range ids {
		if r4.Owner(id) != r3.Owner(id) {
			// A leave may only move keys off the leaving shard.
			if was := r4.Owner(id); was != names[0] {
				t.Fatalf("leave moved %s owned by surviving shard %s", id, was)
			}
			moved++
		}
	}
	want = float64(len(ids)) / 4
	if f := float64(moved); f < 0.5*want || f > 1.5*want {
		t.Errorf("leave moved %d of %d keys; want ≈%.0f (1/4)", moved, len(ids), want)
	}
}

// TestRingPrefixAffinity pins the subtree guarantee: every identifier
// under one vo/site prefix maps to the same shard, however deep.
func TestRingPrefixAffinity(t *testing.T) {
	r := NewRing(shardNames(8), RingOptions{})
	base := r.Owner(branch.MustParse("site=sdsc,vo=tg"))
	for _, s := range []string{
		"probe=ssh,site=sdsc,vo=tg",
		"dest=caltech,tool=pathload,performance=network,site=sdsc,vo=tg",
		"x=y,probe=gridftp,site=sdsc,vo=tg",
	} {
		if got := r.Owner(branch.MustParse(s)); got != base {
			t.Errorf("%s owned by %s; want subtree owner %s", s, got, base)
		}
	}
	// A different site need not share the owner, but must be stable.
	other := branch.MustParse("probe=ssh,site=ncsa,vo=tg")
	if a, b := r.Owner(other), r.Owner(other); a != b {
		t.Errorf("unstable owner for %s: %s then %s", other, a, b)
	}
}

// TestRingDeterminism: equal member sets (in any order) build identical
// rings, so independently configured routers agree on placement.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"c:1", "a:1", "b:1"}, RingOptions{})
	b := NewRing([]string{"b:1", "a:1", "c:1", "a:1"}, RingOptions{})
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures differ: %s vs %s", a.Signature(), b.Signature())
	}
	for _, id := range ringPopulation(100) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("placement differs for %s", id)
		}
	}
	if c := NewRing([]string{"a:1", "b:1"}, RingOptions{}); c.Signature() == a.Signature() {
		t.Fatal("different member sets share a signature")
	}
	if d := NewRing([]string{"c:1", "a:1", "b:1"}, RingOptions{Depth: 3}); d.Signature() == a.Signature() {
		t.Fatal("different depths share a signature")
	}
}

// TestRingRoot: the root identifier routes somewhere stable rather than
// panicking — shallow queries are scatter-gathered by the query tier,
// but the ring must still answer.
func TestRingRoot(t *testing.T) {
	r := NewRing(shardNames(3), RingOptions{})
	if r.Owner(branch.ID{}) == "" {
		t.Fatal("root has no owner")
	}
	if NewRing(nil, RingOptions{}).Owner(branch.ID{}) != "" {
		t.Fatal("empty ring returned an owner")
	}
}
