package federation

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/simtime"
	"inca/internal/wire"
)

// sinkServer is an in-process shard stand-in: a wire server that acks
// everything and records the branches it received.
type sinkServer struct {
	srv *wire.Server

	mu       sync.Mutex
	branches map[string]int
}

func newSinkServer(t *testing.T) *sinkServer {
	t.Helper()
	s := &sinkServer{branches: make(map[string]int)}
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		s.mu.Lock()
		s.branches[m.Branch]++
		s.mu.Unlock()
		return &wire.Ack{OK: true}
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	s.srv = srv
	t.Cleanup(func() { srv.Close() })
	return s
}

func (s *sinkServer) addr() string { return s.srv.Addr() }

// unique reports how many distinct branches the server has seen.
func (s *sinkServer) unique() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.branches)
}

// deadAddr returns an address nothing listens on: bind, read the port,
// close. Dials fail fast with connection refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack { return &wire.Ack{OK: true} })
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	addr := srv.Addr()
	srv.Close()
	return addr
}

// testBatch keeps the router's clients fast and deterministic under test.
func testBatch() wire.BatchOptions {
	return wire.BatchOptions{FlushInterval: 5 * time.Millisecond, DialTimeout: 500 * time.Millisecond, IOTimeout: 2 * time.Second}
}

// branchesOwnedBy mirrors the router's ring locally and returns n
// branches owned by each named member.
func branchesOwnedBy(t *testing.T, ring *Ring, owner string, n int) []branch.ID {
	t.Helper()
	var out []branch.ID
	for site := 0; len(out) < n && site < 4000; site++ {
		id := branch.MustParse(fmt.Sprintf("probe=px,site=s%04d,vo=tg", site))
		if ring.Owner(id) == owner {
			out = append(out, id)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d branches owned by %s", n, owner)
	}
	return out
}

func handleAll(t *testing.T, r *Router, ids []branch.ID) {
	t.Helper()
	for _, id := range ids {
		ack := r.Handle(&wire.Message{Branch: id.String(), Hostname: "test", Report: []byte("<r/>")}, "test")
		if !ack.OK {
			t.Fatalf("handle %s: nacked: %s", id, ack.Message)
		}
	}
}

// TestLeaveSuccessorUnreachable drives the double-failure path the PR 6
// code silently lost messages on: shard B dies with messages queued, and
// the successor C is unreachable too. Every harvested orphan must remain
// accounted — parked in C's queue (rerouted), or counted as dropped —
// and once C's ranges finally land on a live shard (Leave(C)), every
// message must arrive. The routed/rerouted/unroutable/dropped ledger has
// to reconcile at each step.
func TestLeaveSuccessorUnreachable(t *testing.T) {
	live := newSinkServer(t)
	deadB := deadAddr(t)
	deadC := deadAddr(t)

	r, err := NewRouter([]Shard{{Wire: live.addr()}, {Wire: deadB}, {Wire: deadC}}, RouterOptions{Batch: testBatch()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const perShard = 20
	idsB := branchesOwnedBy(t, r.Ring(), deadB, perShard)
	handleAll(t, r, idsB)

	// Kill... B never lived. Drop it; its orphans re-route to A or C.
	moved, lost, err := r.Leave(deadB)
	if err != nil {
		t.Fatalf("leave B: %v", err)
	}
	if lost != 0 {
		t.Fatalf("leave B lost %d messages with live successors available", lost)
	}
	if moved != perShard {
		t.Fatalf("leave B re-routed %d of %d", moved, perShard)
	}
	st := r.Stats()
	if st.Rerouted != perShard || st.RerouteDropped != 0 || st.Unroutable != 0 {
		t.Fatalf("ledger after leave B: %+v", st)
	}

	// Now drop the (still unreachable) successor C: whatever landed on C
	// must re-route again to A — messages survive two failures back to
	// back. Drain() must cover the re-routed messages (the barrier the
	// old code could not give them).
	if _, lost, err = r.Leave(deadC); err != nil {
		t.Fatalf("leave C: %v", err)
	}
	if lost != 0 {
		t.Fatalf("leave C lost %d messages", lost)
	}
	if err := r.Drain(); err != nil {
		t.Fatalf("drain after double failure: %v", err)
	}
	if got := live.unique(); got != perShard {
		t.Fatalf("live shard received %d of %d branches after double failure", got, perShard)
	}
	st = r.Stats()
	if st.Routed != perShard || st.RerouteDropped != 0 || st.Unroutable != 0 {
		t.Fatalf("final ledger does not reconcile: %+v", st)
	}
}

// TestLeaveOrphanAccounting plants a poison orphan (an unparseable
// branch, which Handle would have refused — the defensive path) directly
// in a shard's queue and proves Leave counts it into unroutable instead
// of silently skipping it, while every well-formed orphan still moves.
func TestLeaveOrphanAccounting(t *testing.T) {
	live := newSinkServer(t)
	deadB := deadAddr(t)
	r, err := NewRouter([]Shard{{Wire: live.addr()}, {Wire: deadB}}, RouterOptions{Batch: testBatch()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const good = 10
	ids := branchesOwnedBy(t, r.Ring(), deadB, good)
	handleAll(t, r, ids)
	// The poison pill: bypass Handle's validation, as a corrupted queue
	// entry would.
	r.mu.RLock()
	r.clients[deadB].Enqueue(&wire.Message{Branch: "not//a=branch,,", Hostname: "test"})
	r.mu.RUnlock()

	moved, lost, err := r.Leave(deadB)
	if err != nil {
		t.Fatal(err)
	}
	if moved != good {
		t.Fatalf("moved %d of %d good orphans", moved, good)
	}
	if lost != 1 {
		t.Fatalf("lost = %d, want the 1 poison orphan", lost)
	}
	st := r.Stats()
	if st.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1 (the poison orphan must be counted, not skipped)", st.Unroutable)
	}
	if st.Rerouted != good {
		t.Fatalf("rerouted = %d, want %d", st.Rerouted, good)
	}
	if err := r.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := live.unique(); got != good {
		t.Fatalf("live shard received %d of %d", got, good)
	}
}

// TestHandleBacklogRefusal pins the custody contract: when the owning
// shard's backlog is full, Handle must nack — never ack into a queue
// slot that sheds an older accepted message.
func TestHandleBacklogRefusal(t *testing.T) {
	live := newSinkServer(t)
	dead := deadAddr(t)
	bo := testBatch()
	bo.MaxPending = 4
	bo.MaxBatch = 4096 // keep messages buffered, not flushed into flight
	bo.FlushInterval = -1
	r, err := NewRouter([]Shard{{Wire: live.addr()}, {Wire: dead}}, RouterOptions{Batch: bo})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ids := branchesOwnedBy(t, r.Ring(), dead, bo.MaxPending+3)
	acked, refused := 0, 0
	for _, id := range ids {
		if r.Handle(&wire.Message{Branch: id.String(), Hostname: "t"}, "t").OK {
			acked++
		} else {
			refused++
		}
	}
	if acked != bo.MaxPending {
		t.Fatalf("acked %d, want exactly MaxPending=%d", acked, bo.MaxPending)
	}
	if refused != 3 {
		t.Fatalf("refused %d, want 3", refused)
	}
	st := r.Stats()
	if st.Routed != uint64(acked) || st.Refused != uint64(refused) {
		t.Fatalf("ledger: routed=%d refused=%d, want %d/%d", st.Routed, st.Refused, acked, refused)
	}
	for _, ss := range st.Shards {
		if ss.Batch.Dropped != 0 {
			t.Fatalf("shard %s dropped %d messages — custody acks must never shed", ss.Shard.Name(), ss.Batch.Dropped)
		}
	}
}

// TestPromoteFailsOverWithoutRingChange proves the failover shape: the
// primary dies with messages queued, Promote swaps the follower in, the
// ring signature does not change (no branch moves owner), the epoch does
// (validators must not survive), and every queued message — the tee
// copies and the harvested primary queue — lands on the follower.
func TestPromoteFailsOverWithoutRingChange(t *testing.T) {
	other := newSinkServer(t)
	follower := newSinkServer(t)
	deadPrimary := deadAddr(t)

	r, err := NewRouter([]Shard{
		{Wire: other.addr()},
		{Wire: deadPrimary, ReplicaWire: follower.addr(), ReplicaHTTP: "127.0.0.1:1"},
	}, RouterOptions{Batch: testBatch()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ringSigBefore := r.Ring().Signature()
	sigBefore := r.Signature()

	const n = 15
	ids := branchesOwnedBy(t, r.Ring(), deadPrimary, n)
	handleAll(t, r, ids)

	// The tee delivers to the follower even while the primary is dead.
	deadline := time.Now().Add(5 * time.Second)
	for follower.unique() < n {
		if time.Now().After(deadline) {
			t.Fatalf("follower tee received %d of %d before promotion", follower.unique(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	s, moved, err := r.Promote(deadPrimary)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if s.Wire != follower.addr() {
		t.Fatalf("promoted shard wire = %s, want follower %s", s.Wire, follower.addr())
	}
	if s.Name() != deadPrimary {
		t.Fatalf("promoted shard ring name = %s, want stable %s", s.Name(), deadPrimary)
	}
	if s.HasReplica() {
		t.Fatalf("promoted shard still lists a follower: %+v", s)
	}
	if got := r.Ring().Signature(); got != ringSigBefore {
		t.Fatalf("ring signature changed across promotion: %s -> %s", ringSigBefore, got)
	}
	if got := r.Signature(); got == sigBefore {
		t.Fatalf("composed signature did not change across promotion: %s", got)
	}
	if moved != n {
		t.Fatalf("promotion re-enqueued %d of %d harvested messages", moved, n)
	}
	if err := r.Drain(); err != nil {
		t.Fatalf("drain after promotion: %v", err)
	}
	if got := follower.unique(); got != n {
		t.Fatalf("follower holds %d of %d branches after promotion", got, n)
	}
	st := r.Stats()
	if st.Promotions != 1 || st.RerouteDropped != 0 || st.Unroutable != 0 {
		t.Fatalf("promotion ledger: %+v", st)
	}

	// New ingest for the slice flows to the promoted follower directly.
	extra := branch.MustParse("probe=extra,site=sX,vo=tg")
	if owner := r.Ring().Owner(extra); owner == deadPrimary {
		handleAll(t, r, []branch.ID{extra})
		if err := r.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if got := follower.unique(); got != n+1 {
			t.Fatalf("post-promotion ingest did not reach the follower")
		}
	}
}

// TestReplicationTee proves steady-state replication: with both primary
// and follower live, every accepted message reaches both.
func TestReplicationTee(t *testing.T) {
	primary := newSinkServer(t)
	follower := newSinkServer(t)
	r, err := NewRouter([]Shard{
		{Wire: primary.addr(), ReplicaWire: follower.addr()},
	}, RouterOptions{Batch: testBatch()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 25
	ids := branchesOwnedBy(t, r.Ring(), primary.addr(), n)
	handleAll(t, r, ids)
	if err := r.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := primary.unique(); got != n {
		t.Fatalf("primary received %d of %d", got, n)
	}
	if got := follower.unique(); got != n {
		t.Fatalf("follower received %d of %d", got, n)
	}
	st := r.Stats()
	if st.ReplicaShed != 0 {
		t.Fatalf("replica shed %d in steady state", st.ReplicaShed)
	}
	if len(st.Shards) != 1 || !st.Shards[0].HasReplica {
		t.Fatalf("stats do not expose the follower: %+v", st.Shards)
	}
	if st.Shards[0].Replica.Acked != n {
		t.Fatalf("replica acked %d of %d", st.Shards[0].Replica.Acked, n)
	}
}

// TestParseShardReplicaSyntax covers the follower spec grammar and the
// positional -replicate pairing.
func TestParseShardReplicaSyntax(t *testing.T) {
	s, err := ParseShard("w:1/h:1=fw:2/fh:2")
	if err != nil {
		t.Fatal(err)
	}
	want := Shard{Wire: "w:1", HTTP: "h:1", ReplicaWire: "fw:2", ReplicaHTTP: "fh:2"}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	if _, err := ParseShard("w:1/h:1="); err == nil {
		t.Fatal("empty follower accepted")
	}

	shards := []Shard{{Wire: "a"}, {Wire: "b"}, {Wire: "c"}}
	if err := ApplyReplicas(shards, "-,fb/fbh,"); err != nil {
		t.Fatal(err)
	}
	if shards[0].HasReplica() || shards[2].HasReplica() {
		t.Fatalf("'-'/empty entries attached followers: %+v", shards)
	}
	if shards[1].ReplicaWire != "fb" || shards[1].ReplicaHTTP != "fbh" {
		t.Fatalf("positional follower not applied: %+v", shards[1])
	}
	if err := ApplyReplicas(shards, "x,y"); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := ApplyReplicas(shards, "z1,z2,z3"); err == nil {
		t.Fatal("double follower attach accepted")
	}
}

// TestRerouteBackoffRetryExhaustion pins the re-route retry loop to the
// injected clock and the jittered exponential ladder. Shard B dies with
// one queued message; its only successor C is dead too, with a backlog
// already full, so every EnqueueCustody retry refuses until the 10s
// re-route deadline expires on the virtual clock. The old code spun a
// fixed 10ms wall sleep (~1000 iterations against the wall clock); the
// ladder must cross the same deadline in a few dozen fires, with no real
// sleeping at all.
func TestRerouteBackoffRetryExhaustion(t *testing.T) {
	deadB := deadAddr(t)
	deadC := deadAddr(t)
	sim := simtime.NewSim(time.Unix(0, 0))
	start := sim.Now()

	batch := testBatch()
	batch.FlushInterval = -1 // queues only move when the re-route loop kicks them
	batch.MaxPending = 1     // one message fills a shard's backlog
	r, err := NewRouter([]Shard{{Wire: deadB}, {Wire: deadC}}, RouterOptions{Batch: batch, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Fill C's backlog, then queue the message B will orphan.
	handleAll(t, r, branchesOwnedBy(t, r.Ring(), deadC, 1))
	handleAll(t, r, branchesOwnedBy(t, r.Ring(), deadB, 1))

	done := make(chan struct{})
	var moved, lost int
	var leaveErr error
	go func() {
		defer close(done)
		moved, lost, leaveErr = r.Leave(deadB)
	}()

	// Drive the virtual clock: fire each backoff sleep as it registers.
	var fires atomic.Int64
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if sim.Waiters() > 0 {
				if sim.Step() {
					fires.Add(1)
				}
			} else {
				runtime.Gosched()
			}
		}
	}()

	select {
	case <-done:
	case <-time.After(30 * time.Second): // safety net, never hit on the passing path
		t.Fatal("Leave did not return: the retry loop is not exhausting against the injected clock")
	}
	if leaveErr != nil {
		t.Fatalf("leave: %v", leaveErr)
	}
	if moved != 0 || lost != 1 {
		t.Fatalf("moved=%d lost=%d, want 0 moved and the orphan counted lost", moved, lost)
	}
	st := r.Stats()
	if st.RerouteDropped != 1 {
		t.Fatalf("RerouteDropped = %d, want 1", st.RerouteDropped)
	}
	if st.Rerouted != 0 {
		t.Fatalf("Rerouted = %d, want 0", st.Rerouted)
	}
	// The deadline expired on the virtual clock, not the wall clock.
	if advanced := sim.Now().Sub(start); advanced < rerouteDeadline {
		t.Fatalf("virtual clock advanced only %v, deadline is %v", advanced, rerouteDeadline)
	}
	// The exponential ladder crosses 10s in tens of fires; a fixed 10ms
	// poll would need ~1000.
	if n := fires.Load(); n < 10 || n > 120 {
		t.Fatalf("%d backoff fires to cross the deadline, want the exponential ladder's few dozen", n)
	}
}
