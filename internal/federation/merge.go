package federation

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"inca/internal/branch"
)

// The scatter-gather merge: each shard answers a /cache or /reports query
// with a canonical document over its slice of the branch space, and these
// functions stitch the slices back into the byte-identical answer a
// single depot holding every report would give. That identity is what
// lets the query tier compose per-shard ETags into one validator — equal
// per-shard generations imply equal merged bytes.
//
// Two structural facts make a byte-exact merge possible. First, every
// cache document is canonical: no inter-element whitespace, children in
// (name, value) order, a node's entry before its branch children — so
// order is a function of content, not arrival. Second, the ring routes
// whole prefix subtrees: two shards can both hold a node only above the
// affinity depth (e.g. both have a vo=tg child when sites hash apart),
// and such shared interior nodes merge recursively; at or below the
// affinity depth a subtree has exactly one owner, and any duplicate left
// behind by a rebalance is resolved in the owner's favor.

// ShardDoc is one shard's response body, tagged with the ring member that
// produced it.
type ShardDoc struct {
	Shard string
	Body  []byte
}

// docParts is one container element split into its verbatim pieces.
type docParts struct {
	shard string
	open  []byte // "<cache>" or "<branch name=... value=...>"
	close []byte // matching end tag
	entry []byte // raw <entry>…</entry>, nil if the node holds no report
	kids  []childRef
}

// childRef is one depth-1 <branch> child, sliced verbatim from the
// source document.
type childRef struct {
	name, value string
	raw         []byte
	shard       string
}

// splitDoc splits a canonical subtree document into container tags, the
// node's entry, and its branch children. Child bytes are sliced from the
// input verbatim, so reassembly preserves the shard's exact rendering.
func splitDoc(body []byte, shard string) (docParts, error) {
	p := docParts{shard: shard}
	dec := xml.NewDecoder(bytes.NewReader(body))
	tok, err := dec.Token()
	if err != nil {
		return p, fmt.Errorf("federation: bad shard document: %w", err)
	}
	if _, ok := tok.(xml.StartElement); !ok {
		return p, fmt.Errorf("federation: shard document does not start with an element")
	}
	p.open = body[:dec.InputOffset()]
	for {
		pos := dec.InputOffset()
		tok, err := dec.Token()
		if err == io.EOF {
			return p, fmt.Errorf("federation: shard document not closed")
		}
		if err != nil {
			return p, fmt.Errorf("federation: bad shard document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := dec.Skip(); err != nil {
				return p, fmt.Errorf("federation: bad shard document: %w", err)
			}
			raw := body[pos:dec.InputOffset()]
			switch t.Name.Local {
			case "entry":
				if p.entry != nil {
					return p, fmt.Errorf("federation: node with two entries")
				}
				p.entry = raw
			case "branch":
				var name, value string
				for _, a := range t.Attr {
					switch a.Name.Local {
					case "name":
						name = a.Value
					case "value":
						value = a.Value
					}
				}
				p.kids = append(p.kids, childRef{name: name, value: value, raw: raw, shard: shard})
			default:
				return p, fmt.Errorf("federation: unexpected element <%s> in cache document", t.Name.Local)
			}
		case xml.EndElement:
			p.close = body[pos:]
			return p, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return p, fmt.Errorf("federation: unexpected character data in cache document")
			}
		}
	}
}

// keyPath is Ring.Key over an explicit general→specific path.
func (r *Ring) keyPath(path []branch.Pair) string {
	if len(path) > r.depth {
		path = path[:r.depth]
	}
	var b []byte
	for i, p := range path {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.Name...)
		b = append(b, '=')
		b = append(b, p.Value...)
	}
	return string(b)
}

// preferOwner picks the candidate shard the ring says owns path,
// falling back to the first candidate. Duplicates of an owned subtree
// only exist transiently after a rebalance copied it to its new owner;
// the owner's copy is the one ingest has been updating since.
func preferOwner(candidates []string, path []branch.Pair, r *Ring) string {
	owner := r.OwnerKey(r.keyPath(path))
	for _, c := range candidates {
		if c == owner {
			return c
		}
	}
	return candidates[0]
}

// MergeCache merges per-shard /cache responses for the branch id into the
// single-depot answer. docs carries only the shards that had data (404s
// are simply absent); id is the queried branch, whose path seeds the
// ownership decisions for duplicate subtrees.
func MergeCache(docs []ShardDoc, id branch.ID, r *Ring) ([]byte, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("federation: nothing to merge")
	}
	if len(docs) == 1 {
		return docs[0].Body, nil
	}
	parts := make([]docParts, 0, len(docs))
	for _, d := range docs {
		p, err := splitDoc(d.Body, d.Shard)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	var buf bytes.Buffer
	n := 0
	for _, d := range docs {
		n += len(d.Body)
	}
	buf.Grow(n)
	if err := mergeNode(&buf, parts, id.Path(), r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// mergeNode writes the canonical merge of one shared node. path is the
// node's general→specific location from the cache root.
func mergeNode(buf *bytes.Buffer, parts []docParts, path []branch.Pair, r *Ring) error {
	buf.Write(parts[0].open)

	// The node's entry: one shard owns the exact branch, so at most one
	// entry exists in steady state; duplicates resolve to the owner's.
	var entryShards []string
	var entries map[string][]byte
	for _, p := range parts {
		if p.entry != nil {
			if entries == nil {
				entries = make(map[string][]byte, 2)
			}
			entryShards = append(entryShards, p.shard)
			entries[p.shard] = p.entry
		}
	}
	if len(entryShards) > 0 {
		buf.Write(entries[preferOwner(entryShards, path, r)])
	}

	// Branch children in canonical (name, value) order. Each shard's kids
	// arrive sorted already; a global stable sort groups equal keys across
	// shards without disturbing per-shard order.
	var kids []childRef
	for _, p := range parts {
		kids = append(kids, p.kids...)
	}
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].name != kids[j].name {
			return kids[i].name < kids[j].name
		}
		return kids[i].value < kids[j].value
	})
	for i := 0; i < len(kids); {
		j := i + 1
		for j < len(kids) && kids[j].name == kids[i].name && kids[j].value == kids[i].value {
			j++
		}
		group := kids[i:j]
		childPath := append(append([]branch.Pair(nil), path...), branch.Pair{Name: group[0].name, Value: group[0].value})
		switch {
		case len(group) == 1:
			buf.Write(group[0].raw)
		case len(childPath) >= r.depth:
			// A routed subtree has one owner; several copies mean a
			// rebalance left a stale one behind. Keep the owner's.
			shards := make([]string, len(group))
			for k, g := range group {
				shards[k] = g.shard
			}
			owner := preferOwner(shards, childPath, r)
			for _, g := range group {
				if g.shard == owner {
					buf.Write(g.raw)
					break
				}
			}
		default:
			// Shared interior node (above the affinity depth): recurse.
			sub := make([]docParts, 0, len(group))
			for _, g := range group {
				p, err := splitDoc(g.raw, g.shard)
				if err != nil {
					return err
				}
				sub = append(sub, p)
			}
			if err := mergeNode(buf, sub, childPath, r); err != nil {
				return err
			}
		}
		i = j
	}
	buf.Write(parts[0].close)
	return nil
}

// storedChunk is one <stored> element from a shard's /reports response.
type storedChunk struct {
	path  []branch.Pair
	raw   []byte
	shard string
}

// MergeReports merges per-shard /reports responses into the single-depot
// report list: <stored> elements in canonical branch order (the order a
// single depot's document walk yields), duplicates from a rebalance
// resolved in the ring owner's favor.
func MergeReports(docs []ShardDoc, r *Ring) ([]byte, error) {
	if len(docs) == 1 {
		return docs[0].Body, nil
	}
	var chunks []storedChunk
	for _, d := range docs {
		part, err := splitReports(d.Body, d.Shard)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, part...)
	}
	sort.SliceStable(chunks, func(i, j int) bool {
		return comparePaths(chunks[i].path, chunks[j].path) < 0
	})
	var buf bytes.Buffer
	buf.WriteString("<reports>")
	for i := 0; i < len(chunks); {
		j := i + 1
		for j < len(chunks) && comparePaths(chunks[j].path, chunks[i].path) == 0 {
			j++
		}
		group := chunks[i:j]
		if len(group) == 1 {
			buf.Write(group[0].raw)
		} else {
			shards := make([]string, len(group))
			for k, g := range group {
				shards[k] = g.shard
			}
			owner := preferOwner(shards, group[0].path, r)
			for _, g := range group {
				if g.shard == owner {
					buf.Write(g.raw)
					break
				}
			}
		}
		i = j
	}
	buf.WriteString("</reports>")
	return buf.Bytes(), nil
}

func splitReports(body []byte, shard string) ([]storedChunk, error) {
	dec := xml.NewDecoder(bytes.NewReader(body))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("federation: bad reports document: %w", err)
	}
	if start, ok := tok.(xml.StartElement); !ok || start.Name.Local != "reports" {
		return nil, fmt.Errorf("federation: not a reports document")
	}
	var out []storedChunk
	for {
		pos := dec.InputOffset()
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("federation: bad reports document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "stored" {
				return nil, fmt.Errorf("federation: unexpected element <%s> in reports document", t.Name.Local)
			}
			var idAttr string
			for _, a := range t.Attr {
				if a.Name.Local == "branch" {
					idAttr = a.Value
				}
			}
			id, err := branch.Parse(idAttr)
			if err != nil {
				return nil, fmt.Errorf("federation: bad stored branch: %w", err)
			}
			if err := dec.Skip(); err != nil {
				return nil, fmt.Errorf("federation: bad reports document: %w", err)
			}
			out = append(out, storedChunk{path: id.Path(), raw: body[pos:dec.InputOffset()], shard: shard})
		case xml.EndElement:
			return out, nil
		}
	}
}

// comparePaths orders general→specific paths the way branch.Sort does:
// component-wise by (name, value), shorter prefix first.
func comparePaths(a, b []branch.Pair) int {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k].Name != b[k].Name {
			if a[k].Name < b[k].Name {
				return -1
			}
			return 1
		}
		if a[k].Value != b[k].Value {
			if a[k].Value < b[k].Value {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
