package stats

import (
	"math"
	"testing"
)

func TestSlope(t *testing.T) {
	if got := Slope([]float64{1, 2, 3}, []float64{2, 4, 6}); !almostEqual(got, 2) {
		t.Fatalf("Slope = %g, want 2", got)
	}
	if got := Slope([]float64{0, 10}, []float64{5, 5}); !almostEqual(got, 0) {
		t.Fatalf("flat Slope = %g, want 0", got)
	}
	if !math.IsNaN(Slope([]float64{1}, []float64{1})) {
		t.Fatal("single-point slope not NaN")
	}
	if !math.IsNaN(Slope([]float64{1, 2}, []float64{1})) {
		t.Fatal("mismatched-length slope not NaN")
	}
	if !math.IsNaN(Slope([]float64{3, 3}, []float64{1, 2})) {
		t.Fatal("degenerate-x slope not NaN")
	}
}

func TestDetectKneePlateauWithLatencyInflection(t *testing.T) {
	// Classic saturation: throughput doubles with load until 8 clients,
	// then flattens while p95 takes off.
	points := []CurvePoint{
		{Load: 1, Throughput: 1000, P95: 10},
		{Load: 2, Throughput: 1950, P95: 11},
		{Load: 4, Throughput: 3900, P95: 12},
		{Load: 8, Throughput: 7500, P95: 14},
		{Load: 16, Throughput: 7800, P95: 40},
		{Load: 32, Throughput: 7600, P95: 95},
	}
	knee, ok := DetectKnee(points, KneeOptions{})
	if !ok {
		t.Fatal("no knee detected on a saturating curve")
	}
	if knee.Index != 4 || knee.Load != 16 {
		t.Fatalf("knee at index %d load %g, want index 4 load 16 (%+v)", knee.Index, knee.Load, knee)
	}
	if !knee.LatencyConfirmed {
		t.Fatalf("latency inflection not confirmed: %+v", knee)
	}
	if knee.Reason == "" {
		t.Fatal("empty knee reason")
	}
}

func TestDetectKneeNoPlateau(t *testing.T) {
	// Linear scaling all the way: no knee to find.
	points := []CurvePoint{
		{Load: 1, Throughput: 100, P95: 10},
		{Load: 2, Throughput: 200, P95: 10},
		{Load: 4, Throughput: 400, P95: 10},
		{Load: 8, Throughput: 800, P95: 10},
	}
	if knee, ok := DetectKnee(points, KneeOptions{}); ok {
		t.Fatalf("knee %+v detected on a linearly scaling curve", knee)
	}
}

func TestDetectKneeThroughputDecline(t *testing.T) {
	// Overload collapse: past the knee throughput falls. The negative
	// marginal slope must qualify as a plateau even with a generous
	// threshold.
	points := []CurvePoint{
		{Load: 1, Throughput: 500, P95: 20},
		{Load: 2, Throughput: 990, P95: 21},
		{Load: 4, Throughput: 900, P95: 80},
		{Load: 8, Throughput: 700, P95: 200},
	}
	knee, ok := DetectKnee(points, KneeOptions{PlateauFrac: 0.01})
	if !ok {
		t.Fatal("no knee on a collapsing curve")
	}
	if knee.Index != 2 {
		t.Fatalf("knee at index %d, want 2 (%+v)", knee.Index, knee)
	}
	if !knee.LatencyConfirmed {
		t.Fatalf("p95 quadrupled yet inflection unconfirmed: %+v", knee)
	}
}

func TestDetectKneeSaturatedFromFirstStage(t *testing.T) {
	// On a small machine the service can saturate below the first measured
	// load: throughput never rises. The knee is the first non-rising stage
	// — the curve must not read as "no knee" just because the ramp missed
	// the ascent.
	points := []CurvePoint{
		{Load: 1, Throughput: 4000, P95: 800},
		{Load: 2, Throughput: 3900, P95: 2100},
		{Load: 4, Throughput: 3200, P95: 4400},
	}
	knee, ok := DetectKnee(points, KneeOptions{})
	if !ok {
		t.Fatal("no knee on a curve that is saturated from the start")
	}
	if knee.Index != 1 || knee.Load != 2 {
		t.Fatalf("knee = %+v, want the first non-rising stage (index 1, load 2)", knee)
	}
	if !knee.LatencyConfirmed {
		t.Fatalf("p95 more than doubled yet inflection unconfirmed: %+v", knee)
	}
}

func TestDetectKneePrefersLatencyConfirmedStage(t *testing.T) {
	// The plateau starts at index 2, but p95 only inflects at index 3:
	// the reported knee upgrades to the latency-confirmed stage.
	points := []CurvePoint{
		{Load: 1, Throughput: 1000, P95: 10},
		{Load: 2, Throughput: 2000, P95: 10},
		{Load: 4, Throughput: 2050, P95: 12},
		{Load: 8, Throughput: 2100, P95: 50},
	}
	knee, ok := DetectKnee(points, KneeOptions{})
	if !ok {
		t.Fatal("no knee detected")
	}
	if knee.Index != 3 || !knee.LatencyConfirmed {
		t.Fatalf("knee = %+v, want latency-confirmed index 3", knee)
	}
}

func TestDetectKneeDegenerateInputs(t *testing.T) {
	if _, ok := DetectKnee(nil, KneeOptions{}); ok {
		t.Fatal("knee on empty curve")
	}
	if _, ok := DetectKnee([]CurvePoint{{1, 1, 1}, {2, 2, 1}}, KneeOptions{}); ok {
		t.Fatal("knee on a two-point curve")
	}
	unsorted := []CurvePoint{{4, 1, 1}, {2, 2, 1}, {8, 2, 1}}
	if _, ok := DetectKnee(unsorted, KneeOptions{}); ok {
		t.Fatal("knee on an unsorted curve")
	}
	dup := []CurvePoint{{2, 1, 1}, {2, 2, 1}, {4, 2, 1}}
	if _, ok := DetectKnee(dup, KneeOptions{}); ok {
		t.Fatal("knee on a duplicate-load curve")
	}
}

func TestPercentileTwoSampleInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); !almostEqual(got, 15) {
		t.Fatalf("P50 = %g, want 15", got)
	}
	if got := Percentile(xs, 25); !almostEqual(got, 12.5) {
		t.Fatalf("P25 = %g, want 12.5", got)
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %g, want 10", got)
	}
	if got := Percentile(xs, 100); got != 20 {
		t.Fatalf("P100 = %g, want 20", got)
	}
}

func TestPercentileOutOfRangeClamps(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -10); got != 1 {
		t.Fatalf("P(-10) = %g, want min", got)
	}
	if got := Percentile(xs, 250); got != 3 {
		t.Fatalf("P(250) = %g, want max", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	for _, p := range []float64{0, 17, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("P%g of one sample = %g, want 7", p, got)
		}
	}
}
