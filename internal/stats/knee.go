package stats

import (
	"fmt"
	"math"
	"sort"
)

// CurvePoint is one stage of a load-vs-response curve: the offered load
// (concurrent closed-loop clients), the achieved throughput, and the
// p95 response time at that load — the DiPerF axes.
type CurvePoint struct {
	Load       float64 // concurrency (or offered rate)
	Throughput float64 // achieved ops/sec
	P95        float64 // response-time percentile at this load (any unit)
}

// Slope returns the least-squares slope of ys over xs. It needs at least
// two points with distinct x values; otherwise it returns NaN.
func Slope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(len(xs)), sy/float64(len(ys))
	var num, den float64
	for i := range xs {
		dx := xs[i] - mx
		num += dx * (ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// KneeOptions tunes saturation-knee detection.
type KneeOptions struct {
	// PlateauFrac is the throughput-plateau threshold: a ramp segment
	// whose marginal throughput slope falls below PlateauFrac times the
	// steepest earlier segment marks the curve as flattening
	// (default 0.25). Negative marginal slopes (throughput decline past
	// saturation) always qualify.
	PlateauFrac float64
	// LatencyInflect is the response-time inflection threshold: the
	// stage's p95 must exceed LatencyInflect times the minimum p95 of the
	// stages before the candidate for the knee to count as confirmed by
	// latency (default 1.5).
	LatencyInflect float64
}

func (o *KneeOptions) fill() {
	if o.PlateauFrac <= 0 {
		o.PlateauFrac = 0.25
	}
	if o.LatencyInflect <= 0 {
		o.LatencyInflect = 1.5
	}
}

// Knee is a detected saturation point on a load curve.
type Knee struct {
	// Index is the position of the knee stage in the input curve.
	Index int
	// Load, Throughput, and P95 echo the knee stage's point.
	Load       float64
	Throughput float64
	P95        float64
	// LatencyConfirmed reports whether the p95 inflection criterion held
	// at the knee in addition to the throughput plateau.
	LatencyConfirmed bool
	// Reason is a human-readable account of what triggered detection.
	Reason string
}

// DetectKnee locates the saturation knee of a monotone-load curve: the
// first stage at which throughput stops growing (the marginal ops/sec
// gained per unit of added load drops below PlateauFrac of the steepest
// earlier segment, DiPerF's plateau; a non-positive marginal slope
// always qualifies, so a curve already saturated at its first measured
// load knees at the first non-rising stage) — preferring, when one
// exists, a plateau stage whose p95 has also inflected above
// LatencyInflect times the pre-knee minimum. Points must be sorted by
// strictly increasing Load; ok is false when the curve never flattens
// (or has fewer than three points, too few to separate ramp from
// plateau).
func DetectKnee(points []CurvePoint, opt KneeOptions) (Knee, bool) {
	opt.fill()
	if len(points) < 3 {
		return Knee{}, false
	}
	if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].Load < points[j].Load }) {
		return Knee{}, false
	}
	// Marginal throughput slope of each ramp segment [i-1, i].
	slopes := make([]float64, len(points))
	for i := 1; i < len(points); i++ {
		dl := points[i].Load - points[i-1].Load
		if dl <= 0 {
			return Knee{}, false
		}
		slopes[i] = (points[i].Throughput - points[i-1].Throughput) / dl
	}
	knee := Knee{Index: -1}
	peak := math.Inf(-1) // steepest marginal gain seen before the candidate
	minP95 := points[0].P95
	for i := 1; i < len(points); i++ {
		if i >= 2 && slopes[i-1] > peak {
			peak = slopes[i-1]
		}
		plateau := slopes[i] <= 0 || (peak > 0 && slopes[i] < opt.PlateauFrac*peak)
		if plateau {
			inflected := minP95 > 0 && points[i].P95 >= opt.LatencyInflect*minP95
			if knee.Index < 0 || (inflected && !knee.LatencyConfirmed) {
				knee = Knee{
					Index:            i,
					Load:             points[i].Load,
					Throughput:       points[i].Throughput,
					P95:              points[i].P95,
					LatencyConfirmed: inflected,
				}
				peakDesc := fmt.Sprintf("peak %.1f", peak)
				if math.IsInf(peak, -1) {
					peakDesc = "no rising segment"
				}
				if inflected {
					knee.Reason = fmt.Sprintf(
						"throughput plateau (marginal slope %.1f, %s ops/sec per client) with p95 inflection (%.0f vs pre-knee min %.0f)",
						slopes[i], peakDesc, points[i].P95, minP95)
					break // first latency-confirmed plateau wins outright
				}
				knee.Reason = fmt.Sprintf(
					"throughput plateau (marginal slope %.1f, %s ops/sec per client; p95 %.0f below inflection threshold)",
					slopes[i], peakDesc, points[i].P95)
			}
		}
		if points[i].P95 < minP95 {
			minP95 = points[i].P95
		}
	}
	if knee.Index < 0 {
		return Knee{}, false
	}
	return knee, true
}
