package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Reservoir is a bounded uniform sample over an unbounded observation
// stream (Vitter's algorithm R): Add is O(1), memory is capped at the
// reservoir size, and the retained samples are a uniform random subset
// of everything observed — so percentiles computed over them converge on
// the exact stream percentiles. It replaces the grow-forever slices the
// experiment harness used to keep per worker, whose memory and final
// merge-and-sort grew linearly with ramp length. Safe for concurrent
// use, though the intended shape is one reservoir per worker.
type Reservoir struct {
	mu      sync.Mutex
	cap     int
	seen    int64
	samples []float64
	rng     *rand.Rand
}

// NewReservoir returns a reservoir retaining at most capacity samples.
// The seed makes replacement deterministic for a given observation
// order; capacities below 1 are raised to 1.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap:     capacity,
		samples: make([]float64, 0, capacity),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Add observes one value.
func (r *Reservoir) Add(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.samples[j] = x
	}
}

// Count returns how many values have been observed (not retained).
func (r *Reservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Samples returns a copy of the retained sample set.
func (r *Reservoir) Samples() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.samples...)
}

// weighted is one retained sample carrying the share of the stream it
// stands for.
type weighted struct {
	v, w float64
}

// MergedPercentiles estimates percentiles over the union of several
// reservoirs' underlying streams. Each retained sample is weighted by
// its reservoir's observed-to-retained ratio, so reservoirs that saw
// more traffic count proportionally more — merging a busy worker with an
// idle one stays faithful to the combined stream. Returns one value per
// requested percentile (0..100); all NaN when nothing was observed.
func MergedPercentiles(rs []*Reservoir, ps ...float64) []float64 {
	var all []weighted
	var total float64
	for _, r := range rs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		if n := len(r.samples); n > 0 {
			w := float64(r.seen) / float64(n)
			for _, v := range r.samples {
				all = append(all, weighted{v, w})
			}
			total += float64(r.seen)
		}
		r.mu.Unlock()
	}
	out := make([]float64, len(ps))
	if len(all) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	for i, p := range ps {
		out[i] = weightedPercentile(all, total, p)
	}
	return out
}

// weightedPercentile walks the sorted weighted samples to the first one
// whose cumulative weight reaches p% of the total (weighted nearest
// rank).
func weightedPercentile(sorted []weighted, total, p float64) float64 {
	if p <= 0 {
		return sorted[0].v
	}
	if p >= 100 {
		return sorted[len(sorted)-1].v
	}
	target := p / 100 * total
	var cum float64
	for _, s := range sorted {
		cum += s.w
		if cum >= target {
			return s.v
		}
	}
	return sorted[len(sorted)-1].v
}
