package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirBoundedMemory(t *testing.T) {
	r := NewReservoir(64, 1)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if got := len(r.Samples()); got != 64 {
		t.Fatalf("retained %d samples, want the 64-sample cap", got)
	}
	if r.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", r.Count())
	}
}

func TestReservoirBelowCapKeepsEverything(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	s := r.Samples()
	if len(s) != 10 {
		t.Fatalf("retained %d of 10", len(s))
	}
	for i, v := range s {
		if v != float64(i) {
			t.Fatalf("sample %d = %g (below cap, order must be preserved)", i, v)
		}
	}
}

func TestMergedPercentilesEmpty(t *testing.T) {
	out := MergedPercentiles([]*Reservoir{NewReservoir(8, 1), nil}, 50, 95)
	if len(out) != 2 || !math.IsNaN(out[0]) || !math.IsNaN(out[1]) {
		t.Fatalf("empty merge = %v, want NaNs", out)
	}
}

func TestMergedPercentilesExactBelowCap(t *testing.T) {
	// With every observation retained, the weighted merge must agree with
	// the exact percentile up to rank rounding.
	a, b := NewReservoir(1000, 1), NewReservoir(1000, 2)
	var all []float64
	for i := 1; i <= 500; i++ {
		a.Add(float64(i))
		all = append(all, float64(i))
	}
	for i := 501; i <= 600; i++ {
		b.Add(float64(i))
		all = append(all, float64(i))
	}
	got := MergedPercentiles([]*Reservoir{a, b}, 50, 95, 99)
	for i, p := range []float64{50, 95, 99} {
		exact := Percentile(all, p)
		if math.Abs(got[i]-exact) > 2 {
			t.Fatalf("p%g = %g, exact %g", p, got[i], exact)
		}
	}
}

// TestReservoirPercentileTolerance is the bounded-memory correctness
// proof the latency tracker rests on: p50/p95/p99 estimated from
// per-worker reservoirs over a long heavy-tailed stream must stay within
// tolerance of the exact percentiles over every sample — including with
// workers that saw very different traffic volumes.
func TestReservoirPercentileTolerance(t *testing.T) {
	const (
		workers = 8
		cap     = 4096
	)
	rng := rand.New(rand.NewSource(42))
	rs := make([]*Reservoir, workers)
	var all []float64
	for w := range rs {
		rs[w] = NewReservoir(cap, int64(w+1))
		// Skewed volumes: worker w observes (w+1)*25000 samples.
		n := (w + 1) * 25000
		for i := 0; i < n; i++ {
			// Log-normal-ish latencies: a heavy right tail, like real
			// response times under load.
			v := math.Exp(rng.NormFloat64()*0.75 + 5)
			rs[w].Add(v)
			all = append(all, v)
		}
	}
	got := MergedPercentiles(rs, 50, 95, 99)
	for i, p := range []float64{50, 95, 99} {
		exact := Percentile(all, p)
		rel := math.Abs(got[i]-exact) / exact
		if rel > 0.05 {
			t.Fatalf("p%g = %g vs exact %g: relative error %.3f exceeds 5%%", p, got[i], exact, rel)
		}
	}
}

func TestReservoirDistributionUnbiased(t *testing.T) {
	// The retained subset must be uniform over the stream: feeding
	// 0..99999 into a small reservoir, the retained mean should sit near
	// the stream mean.
	r := NewReservoir(2048, 7)
	const n = 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	var sum float64
	for _, v := range r.Samples() {
		sum += v
	}
	mean := sum / float64(len(r.Samples()))
	if math.Abs(mean-(n-1)/2.0) > n*0.025 {
		t.Fatalf("retained mean %.0f too far from stream mean %.0f", mean, (n-1)/2.0)
	}
}
