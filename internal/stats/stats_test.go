package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) < 1e-9
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 || s.Median != 3.5 {
		t.Fatalf("Summarize([3.5]) = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5) {
		t.Fatalf("Mean = %g, want 5", s.Mean)
	}
	// Sample std of this classic dataset: variance = 32/7.
	if !almostEqual(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("Std = %g, want %g", s.Std, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Fatalf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{9, 1, 5}
	Summarize(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(xs, 50); !almostEqual(got, 25) {
		t.Fatalf("P50 = %g, want 25", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) not NaN")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(xs, p)
		s := Summarize(xs)
		return v >= s.Min && v <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Fatalf("FractionBelow = %g, want 0.5", got)
	}
	if got := FractionBelow(nil, 3); got != 0 {
		t.Fatalf("FractionBelow(nil) = %g", got)
	}
	if got := FractionBelow(xs, 0); got != 0 {
		t.Fatalf("FractionBelow(below all) = %g", got)
	}
	if got := FractionBelow(xs, 100); got != 1 {
		t.Fatalf("FractionBelow(above all) = %g", got)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Fatal("accepted single edge")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("accepted non-increasing edges")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("accepted decreasing edges")
	}
	if _, err := NewHistogram([]float64{0, 1, 2}); err != nil {
		t.Fatalf("rejected valid edges: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-1, 0, 5, 10, 15, 29.9, 30, 31})
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Overflow != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow)
	}
	want := []int{2, 2, 2} // [0,10):{0,5} [10,20):{10,15} [20,30]:{29.9,30}
	for i, b := range h.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d count = %d, want %d (hist %+v)", i, b.Count, want[i], h.Buckets)
		}
	}
	if h.Total != 8 {
		t.Fatalf("Total = %d, want 8", h.Total)
	}
}

func TestHistogramConservesSamplesProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := NewHistogram(UniformEdges(0, 100, 10))
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		sum := h.Under + h.Overflow
		for _, b := range h.Buckets {
			sum += b.Count
		}
		return sum == n && h.Total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformEdges(t *testing.T) {
	edges := UniformEdges(0, 100, 4)
	want := []float64{0, 25, 50, 75, 100}
	if len(edges) != len(want) {
		t.Fatalf("len = %d", len(edges))
	}
	for i := range want {
		if !almostEqual(edges[i], want[i]) {
			t.Fatalf("edges = %v", edges)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1, 2})
	h.AddAll([]float64{0.5, 0.6, 1.5})
	out := h.Render(func(lo, hi float64) string { return "row" }, 20)
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if !strings.Contains(out, "66.67%") {
		t.Fatalf("missing percentage:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 rows, got %d:\n%s", len(lines), out)
	}
}

func TestHistogramRenderEmptyAndTinyBars(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1, 2})
	out := h.Render(func(lo, hi float64) string { return "x" }, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("bars rendered for empty histogram:\n%s", out)
	}
	// A bucket with a tiny share still renders at least one '#'.
	for i := 0; i < 1000; i++ {
		h.Add(0.5)
	}
	h.Add(1.5)
	out = h.Render(func(lo, hi float64) string { return "x" }, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("tiny bucket rendered no bar:\n%s", out)
	}
}

func TestCumulativeBelow(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 4, 10, 20})
	h.AddAll([]float64{1, 2, 3, 5, 15})
	frac, ok := h.CumulativeBelow(10)
	if !ok || !almostEqual(frac, 0.8) {
		t.Fatalf("CumulativeBelow(10) = %g,%v; want 0.8,true", frac, ok)
	}
	if _, ok := h.CumulativeBelow(7); ok {
		t.Fatal("CumulativeBelow accepted a non-edge")
	}
	empty, _ := NewHistogram([]float64{0, 1})
	if _, ok := empty.CumulativeBelow(1); ok {
		t.Fatal("CumulativeBelow on empty histogram reported ok")
	}
}
