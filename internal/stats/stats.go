// Package stats provides the summary statistics and histogram rendering used
// by the Inca evaluation harness: the response-time statistics of Table 4 and
// the horizontal histograms of Figures 7 and 8.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics reported in Table 4 of the paper
// (mean, standard deviation, min, max, median) plus the sample count.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs. An empty input yields a zero Summary.
// Std is the sample (n-1) standard deviation, matching the convention of the
// paper's reported "std" row; with a single sample it is zero.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs, so the input is not
// reordered. NaN is returned for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionBelow reports the fraction of samples strictly less than bound,
// e.g. the paper's "99.7% of the time CPU utilization was less than 2%".
func FractionBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Bucket is one bin of a Histogram.
type Bucket struct {
	Lo, Hi float64 // [Lo, Hi); the final bucket is [Lo, Hi]
	Count  int
}

// Histogram is a fixed-bucket histogram over float64 samples.
type Histogram struct {
	Buckets  []Bucket
	Total    int
	Overflow int // samples above the last bucket
	Under    int // samples below the first bucket
}

// NewHistogram builds a histogram with the given bucket edges. Edges must be
// strictly increasing and contain at least two values; len(edges)-1 buckets
// are produced.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges not strictly increasing at %d (%g after %g)", i, edges[i], edges[i-1])
		}
	}
	h := &Histogram{Buckets: make([]Bucket, len(edges)-1)}
	for i := range h.Buckets {
		h.Buckets[i] = Bucket{Lo: edges[i], Hi: edges[i+1]}
	}
	return h, nil
}

// UniformEdges returns n+1 edges dividing [lo, hi] into n equal buckets.
func UniformEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return edges
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Total++
	if x < h.Buckets[0].Lo {
		h.Under++
		return
	}
	last := len(h.Buckets) - 1
	if x > h.Buckets[last].Hi {
		h.Overflow++
		return
	}
	if x == h.Buckets[last].Hi {
		h.Buckets[last].Count++
		return
	}
	// Binary search for the bucket with Lo <= x < Hi.
	i := sort.Search(len(h.Buckets), func(i int) bool { return h.Buckets[i].Hi > x })
	h.Buckets[i].Count++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Render produces a horizontal ASCII histogram in the style of the paper's
// Figures 7 and 8: one row per bucket, a proportional bar, the count, and the
// percentage of all samples. label formats a bucket's range.
func (h *Histogram) Render(label func(lo, hi float64) string, width int) string {
	if width <= 0 {
		width = 50
	}
	maxCount := 0
	for _, b := range h.Buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = b.Count * width / maxCount
		}
		if b.Count > 0 && bar == 0 {
			bar = 1
		}
		pct := 0.0
		if h.Total > 0 {
			pct = 100 * float64(b.Count) / float64(h.Total)
		}
		fmt.Fprintf(&sb, "%-18s |%-*s| %8d (%6.2f%%)\n",
			label(b.Lo, b.Hi), width, strings.Repeat("#", bar), b.Count, pct)
	}
	if h.Under > 0 {
		fmt.Fprintf(&sb, "%-18s %d samples below range\n", "", h.Under)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&sb, "%-18s %d samples above range\n", "", h.Overflow)
	}
	return sb.String()
}

// CumulativeBelow returns the fraction of bucketed samples at or below the
// bucket whose Hi equals edge (useful for statements like "97.64% of reports
// were smaller than 10 KB"). It returns false if edge is not a bucket edge.
func (h *Histogram) CumulativeBelow(edge float64) (float64, bool) {
	if h.Total == 0 {
		return 0, false
	}
	cum := h.Under
	for _, b := range h.Buckets {
		cum += b.Count
		if b.Hi == edge {
			return float64(cum) / float64(h.Total), true
		}
	}
	return 0, false
}
