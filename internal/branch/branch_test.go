package branch

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExample(t *testing.T) {
	// The exact identifier from Section 3.1.3.
	id, err := Parse("dest=siteB,tool=pathload,performance=network,site=siteA,vo=samplegrid")
	if err != nil {
		t.Fatal(err)
	}
	if id.Depth() != 5 {
		t.Fatalf("Depth = %d, want 5", id.Depth())
	}
	if v, ok := id.Get("tool"); !ok || v != "pathload" {
		t.Fatalf("Get(tool) = %q,%v", v, ok)
	}
	path := id.Path()
	if path[0] != (Pair{"vo", "samplegrid"}) || path[4] != (Pair{"dest", "siteB"}) {
		t.Fatalf("Path = %v", path)
	}
}

func TestParseWhitespace(t *testing.T) {
	id, err := Parse("  a=1 , b = 2  ")
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "a=1,b=2" {
		t.Fatalf("String = %q", id.String())
	}
}

func TestParseRoot(t *testing.T) {
	id, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !id.IsRoot() || id.String() != "" {
		t.Fatalf("root = %+v", id)
	}
	if !id.Parent().IsRoot() {
		t.Fatal("Parent of root is not root")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"a=1,,b=2", // empty component
		"noequals", // missing =
		"=v",       // empty name
		"n=",       // empty value
		"a=1,n=",   // trailing empty value
		" = ",      // both empty
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("bad")
}

func TestStringRoundTripProperty(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789.-_"
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	f := func(seed int64, depth uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := int(depth%6) + 1
		pairs := make([]Pair, d)
		for i := range pairs {
			pairs[i] = Pair{Name: gen(r), Value: gen(r)}
		}
		id := New(pairs...)
		back, err := Parse(id.String())
		return err == nil && back.Equal(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("x=1,y=2")
	b := MustParse("x=1,y=2")
	c := MustParse("y=2,x=1")
	d := MustParse("x=1")
	if !a.Equal(b) {
		t.Fatal("identical IDs not equal")
	}
	if a.Equal(c) {
		t.Fatal("order should matter")
	}
	if a.Equal(d) {
		t.Fatal("different depths equal")
	}
}

func TestHasSuffix(t *testing.T) {
	id := MustParse("dest=siteB,tool=pathload,site=siteA,vo=tg")
	cases := []struct {
		general string
		want    bool
	}{
		{"", true},
		{"vo=tg", true},
		{"site=siteA,vo=tg", true},
		{"dest=siteB,tool=pathload,site=siteA,vo=tg", true},
		{"site=siteB,vo=tg", false},
		{"vo=other", false},
		{"x=1,dest=siteB,tool=pathload,site=siteA,vo=tg", false}, // deeper than id
	}
	for _, c := range cases {
		if got := id.HasSuffix(MustParse(c.general)); got != c.want {
			t.Errorf("HasSuffix(%q) = %v, want %v", c.general, got, c.want)
		}
	}
}

func TestChildParent(t *testing.T) {
	root := ID{}
	vo := root.Child("vo", "tg")
	site := vo.Child("site", "sdsc")
	if site.String() != "site=sdsc,vo=tg" {
		t.Fatalf("site = %q", site.String())
	}
	if !site.Parent().Equal(vo) {
		t.Fatalf("Parent = %q", site.Parent().String())
	}
	if !site.HasSuffix(vo) {
		t.Fatal("child lost suffix relation to parent")
	}
}

func TestChildParentInverseProperty(t *testing.T) {
	f := func(names []uint8) bool {
		id := ID{}
		for i, n := range names {
			if i >= 5 {
				break
			}
			id = id.Child("n"+string(rune('a'+n%26)), "v")
		}
		// Walking back up Depth() times returns to root.
		cur := id
		for !cur.IsRoot() {
			next := cur.Parent()
			if next.Depth() != cur.Depth()-1 {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortOrdersByGeneralPath(t *testing.T) {
	ids := []ID{
		MustParse("r=2,site=b,vo=tg"),
		MustParse("site=a,vo=tg"),
		MustParse("r=1,site=b,vo=tg"),
		MustParse("vo=tg"),
	}
	Sort(ids)
	got := make([]string, len(ids))
	for i, id := range ids {
		got[i] = id.String()
	}
	want := []string{"vo=tg", "site=a,vo=tg", "r=1,site=b,vo=tg", "r=2,site=b,vo=tg"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sort = %v, want %v", got, want)
	}
}

func TestPathReversesPairs(t *testing.T) {
	id := MustParse("a=1,b=2,c=3")
	p := id.Path()
	if p[0].Name != "c" || p[2].Name != "a" {
		t.Fatalf("Path = %v", p)
	}
	// Path must not alias the internal slice.
	p[0].Name = "zz"
	if id.Pairs[2].Name != "c" {
		t.Fatal("Path aliases internal storage")
	}
}

func TestReservedCharacterRejected(t *testing.T) {
	if _, err := Parse("a=b=c"); err == nil {
		// a=b=c parses name "a", value "b=c" — contains '='; must be rejected
		// so String() round-trips unambiguously.
		t.Fatal("value containing '=' accepted")
	}
}

func TestStringAllocatesFresh(t *testing.T) {
	id := MustParse("a=1,b=2")
	s1 := id.String()
	s2 := id.String()
	if s1 != s2 {
		t.Fatal("String not deterministic")
	}
	if !strings.Contains(s1, "a=1") {
		t.Fatalf("String = %q", s1)
	}
}
