// Package branch implements Inca branch identifiers.
//
// A branch identifier tells the server where a report's data lives. Per
// Section 3.1.3 of the paper it is "a comma delimited list of name/value
// pairs similar to LDAP distinguished names", e.g.
//
//	dest=siteB,tool=pathload,performance=network,site=siteA,vo=samplegrid
//
// Like an LDAP DN, the leftmost pair is the most specific component and the
// rightmost the most general: the example above names the node
// vo=samplegrid / site=siteA / performance=network / tool=pathload /
// dest=siteB in the depot cache tree.
package branch

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is one name=value component of a branch identifier.
type Pair struct {
	Name  string
	Value string
}

// ID is a parsed branch identifier: Pairs[0] is the most specific (leftmost)
// component. A zero ID (no pairs) addresses the cache root.
type ID struct {
	Pairs []Pair
}

// Parse parses a textual branch identifier. Whitespace around pairs is
// trimmed (controller configs in the wild line-wrap long identifiers).
// An empty string parses to the root ID.
func Parse(s string) (ID, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return ID{}, nil
	}
	parts := strings.Split(s, ",")
	id := ID{Pairs: make([]Pair, 0, len(parts))}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return ID{}, fmt.Errorf("branch: empty component in %q", s)
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return ID{}, fmt.Errorf("branch: component %q missing '=' in %q", part, s)
		}
		name := strings.TrimSpace(part[:eq])
		value := strings.TrimSpace(part[eq+1:])
		if name == "" {
			return ID{}, fmt.Errorf("branch: empty name in component %q", part)
		}
		if value == "" {
			return ID{}, fmt.Errorf("branch: empty value in component %q", part)
		}
		if strings.ContainsAny(name, "=,") || strings.ContainsAny(value, "=,") {
			return ID{}, fmt.Errorf("branch: component %q contains reserved character", part)
		}
		id.Pairs = append(id.Pairs, Pair{Name: name, Value: value})
	}
	return id, nil
}

// MustParse is Parse that panics on error, for literals in tests and configs.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// New builds an ID from most-specific to most-general pairs.
func New(pairs ...Pair) ID { return ID{Pairs: pairs} }

// String renders the identifier in its canonical wire form.
func (id ID) String() string {
	parts := make([]string, len(id.Pairs))
	for i, p := range id.Pairs {
		parts[i] = p.Name + "=" + p.Value
	}
	return strings.Join(parts, ",")
}

// IsRoot reports whether the identifier addresses the cache root.
func (id ID) IsRoot() bool { return len(id.Pairs) == 0 }

// Depth returns the number of components.
func (id ID) Depth() int { return len(id.Pairs) }

// Path returns the components ordered from most general to most specific —
// the order in which the depot descends its cache tree.
func (id ID) Path() []Pair {
	out := make([]Pair, len(id.Pairs))
	for i, p := range id.Pairs {
		out[len(id.Pairs)-1-i] = p
	}
	return out
}

// Get returns the value for name and whether it is present.
func (id ID) Get(name string) (string, bool) {
	for _, p := range id.Pairs {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// Equal reports component-wise equality (order matters, as in LDAP DNs).
func (id ID) Equal(other ID) bool {
	if len(id.Pairs) != len(other.Pairs) {
		return false
	}
	for i := range id.Pairs {
		if id.Pairs[i] != other.Pairs[i] {
			return false
		}
	}
	return true
}

// HasSuffix reports whether general is a suffix of id when both are read
// most-specific-first — i.e. whether id lives in the subtree named by
// general. Every ID has the root as a suffix.
func (id ID) HasSuffix(general ID) bool {
	if len(general.Pairs) > len(id.Pairs) {
		return false
	}
	off := len(id.Pairs) - len(general.Pairs)
	for i := range general.Pairs {
		if id.Pairs[off+i] != general.Pairs[i] {
			return false
		}
	}
	return true
}

// Child returns a new identifier one level more specific than id.
func (id ID) Child(name, value string) ID {
	pairs := make([]Pair, 0, len(id.Pairs)+1)
	pairs = append(pairs, Pair{Name: name, Value: value})
	pairs = append(pairs, id.Pairs...)
	return ID{Pairs: pairs}
}

// Parent returns the identifier with the most specific component removed.
// The parent of the root is the root.
func (id ID) Parent() ID {
	if len(id.Pairs) == 0 {
		return ID{}
	}
	return ID{Pairs: append([]Pair(nil), id.Pairs[1:]...)}
}

// Sort orders identifiers by their general-to-specific path, giving a stable
// tree traversal order for cache serialization.
func Sort(ids []ID) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i].Path(), ids[j].Path()
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Name != b[k].Name {
				return a[k].Name < b[k].Name
			}
			if a[k].Value != b[k].Value {
				return a[k].Value < b[k].Value
			}
		}
		return len(a) < len(b)
	})
}
