package gridsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)

func newTestGrid() (*Grid, *Resource) {
	g := New("test", 42)
	site := g.AddSite("SDSC")
	r := site.AddResource("login1.sdsc.edu", Hardware{CPUs: 4, Processor: "Xeon", CPUMHz: 2457, MemoryGB: 2})
	return g, r
}

func TestSiteAndResourceRegistration(t *testing.T) {
	g, r := newTestGrid()
	if s, ok := g.Site("SDSC"); !ok || s.Name != "SDSC" {
		t.Fatal("site lookup failed")
	}
	if _, ok := g.Site("NCSA"); ok {
		t.Fatal("phantom site")
	}
	got, ok := g.Resource("login1.sdsc.edu")
	if !ok || got != r {
		t.Fatal("resource lookup failed")
	}
	// Idempotent adds return the original.
	if g.AddSite("SDSC") != r.Site {
		t.Fatal("AddSite not idempotent")
	}
	if r.Site.AddResource("login1.sdsc.edu", Hardware{}) != r {
		t.Fatal("AddResource not idempotent")
	}
	if len(g.Sites()) != 1 || len(g.Resources()) != 1 {
		t.Fatal("enumeration wrong")
	}
}

func TestServiceUpNoService(t *testing.T) {
	_, r := newTestGrid()
	up, reason := r.ServiceUp("gridftp", t0)
	if up || reason == "" {
		t.Fatalf("missing service reported up (%q)", reason)
	}
}

func TestServiceUpNoFailures(t *testing.T) {
	_, r := newTestGrid()
	r.AddService("ssh", 22, FailureModel{})
	for i := 0; i < 100; i++ {
		up, reason := r.ServiceUp("ssh", t0.Add(time.Duration(i)*time.Hour))
		if !up {
			t.Fatalf("failure-free service down at hour %d: %s", i, reason)
		}
	}
}

func TestServiceFailureEpisodes(t *testing.T) {
	_, r := newTestGrid()
	fm := FailureModel{MTBF: 24 * time.Hour, MTTR: 2 * time.Hour, Prob: 1}
	r.AddService("gram", 2119, fm)
	down := 0
	const samples = 7 * 24 * 60 // minute samples over a week
	for i := 0; i < samples; i++ {
		if up, _ := r.ServiceUp("gram", t0.Add(time.Duration(i)*time.Minute)); !up {
			down++
		}
	}
	frac := float64(down) / samples
	want := 2.0 / 24.0
	if math.Abs(frac-want) > 0.04 {
		t.Fatalf("downtime fraction %.3f, want ≈ %.3f", frac, want)
	}
}

func TestServiceUpDeterministic(t *testing.T) {
	f := func(hourOffset uint16) bool {
		g1 := New("g", 7)
		g2 := New("g", 7)
		for _, g := range []*Grid{g1, g2} {
			r := g.AddSite("S").AddResource("h", Hardware{})
			r.AddService("svc", 1, FailureModel{MTBF: 12 * time.Hour, MTTR: time.Hour, Prob: 0.8})
		}
		at := t0.Add(time.Duration(hourOffset) * time.Minute)
		r1, _ := g1.Resource("h")
		r2, _ := g2.Resource("h")
		up1, _ := r1.ServiceUp("svc", at)
		up2, _ := r2.ServiceUp("svc", at)
		return up1 == up2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	downA, downB := 0, 0
	for seed, count := range map[int64]*int{1: &downA, 2: &downB} {
		g := New("g", seed)
		r := g.AddSite("S").AddResource("h", Hardware{})
		r.AddService("svc", 1, FailureModel{MTBF: 6 * time.Hour, MTTR: time.Hour, Prob: 1})
		for i := 0; i < 500; i++ {
			if up, _ := r.ServiceUp("svc", t0.Add(time.Duration(i)*10*time.Minute)); !up {
				*count++
			}
		}
	}
	if downA == downB {
		t.Log("identical outage counts across seeds (possible but unlikely)")
	}
	if downA == 0 || downB == 0 {
		t.Fatal("Prob=1 model produced no outages")
	}
}

func TestMaintenanceWindow(t *testing.T) {
	_, r := newTestGrid()
	r.AddService("ssh", 22, FailureModel{})
	r.AddMaintenance(MaintenanceWindow{Weekday: time.Monday, Start: 8 * time.Hour, Length: 4 * time.Hour})
	monday := time.Date(2004, 6, 7, 0, 0, 0, 0, time.UTC) // a Monday
	if !r.InMaintenance(monday.Add(10 * time.Hour)) {
		t.Fatal("10:00 Monday not in maintenance")
	}
	if r.InMaintenance(monday.Add(7 * time.Hour)) {
		t.Fatal("07:00 Monday in maintenance")
	}
	if r.InMaintenance(monday.Add(12 * time.Hour)) {
		t.Fatal("12:00 Monday in maintenance (window is half-open)")
	}
	if r.InMaintenance(monday.Add(34 * time.Hour)) {
		t.Fatal("Tuesday in maintenance")
	}
	up, reason := r.ServiceUp("ssh", monday.Add(9*time.Hour))
	if up || reason != "resource in scheduled maintenance" {
		t.Fatalf("maintenance did not take service down: %v %q", up, reason)
	}
}

func TestInjectedOutage(t *testing.T) {
	_, r := newTestGrid()
	r.AddService("srb", 5544, FailureModel{})
	r.AddService("ssh", 22, FailureModel{})
	r.AddOutage(Outage{Service: "srb", From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour), Reason: "disk full"})
	if up, _ := r.ServiceUp("srb", t0.Add(30*time.Minute)); !up {
		t.Fatal("down before outage")
	}
	up, reason := r.ServiceUp("srb", t0.Add(90*time.Minute))
	if up || reason != "disk full" {
		t.Fatalf("outage not applied: %v %q", up, reason)
	}
	if up, _ := r.ServiceUp("ssh", t0.Add(90*time.Minute)); !up {
		t.Fatal("outage leaked to other service")
	}
	if up, _ := r.ServiceUp("srb", t0.Add(2*time.Hour)); !up {
		t.Fatal("outage did not end (half-open interval)")
	}
	// Wildcard outage takes everything down.
	r.AddOutage(Outage{Service: "*", From: t0.Add(3 * time.Hour), To: t0.Add(4 * time.Hour)})
	if up, _ := r.ServiceUp("ssh", t0.Add(3*time.Hour+time.Minute)); up {
		t.Fatal("wildcard outage ignored")
	}
}

func TestPackageTimeline(t *testing.T) {
	_, r := newTestGrid()
	r.InstallPackage("globus", "2.4.0", t0)
	r.InstallPackage("globus", "2.4.3", t0.Add(48*time.Hour))
	p, ok := r.Package("globus")
	if !ok {
		t.Fatal("package missing")
	}
	if _, ok := p.At(t0.Add(-time.Hour)); ok {
		t.Fatal("version before install")
	}
	e, _ := p.At(t0.Add(time.Hour))
	if e.Version != "2.4.0" {
		t.Fatalf("early version = %s", e.Version)
	}
	e, _ = p.At(t0.Add(72 * time.Hour))
	if e.Version != "2.4.3" {
		t.Fatalf("late version = %s", e.Version)
	}
	if pass, _ := p.UnitTestPasses(t0.Add(time.Hour)); !pass {
		t.Fatal("healthy package failed unit test")
	}
}

func TestBreakPackage(t *testing.T) {
	_, r := newTestGrid()
	r.InstallPackage("hdf5", "1.6.2", t0)
	if err := r.BreakPackage("hdf5", t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Package("hdf5")
	if pass, _ := p.UnitTestPasses(t0.Add(time.Hour)); !pass {
		t.Fatal("failed before break")
	}
	pass, reason := p.UnitTestPasses(t0.Add(25 * time.Hour))
	if pass || reason == "" {
		t.Fatal("break not applied")
	}
	// Version query still works after the break.
	e, ok := p.At(t0.Add(25 * time.Hour))
	if !ok || e.Version != "1.6.2" {
		t.Fatalf("version after break = %v %v", e, ok)
	}
	if err := r.BreakPackage("ghost", t0); err == nil {
		t.Fatal("broke nonexistent package")
	}
	if err := r.BreakPackage("hdf5", t0.Add(-time.Hour)); err == nil {
		t.Fatal("broke package before installation")
	}
}

func TestEnvAndSoftEnv(t *testing.T) {
	_, r := newTestGrid()
	r.SetEnv("GLOBUS_LOCATION", "/usr/globus")
	env := r.Env()
	if env["GLOBUS_LOCATION"] != "/usr/globus" {
		t.Fatal("env not set")
	}
	env["GLOBUS_LOCATION"] = "tampered"
	if r.Env()["GLOBUS_LOCATION"] != "/usr/globus" {
		t.Fatal("Env returned aliasing map")
	}
	r.AddSoftEnv("+globus", "GLOBUS_LOCATION=/usr/globus")
	se := r.SoftEnv()
	if len(se) != 1 || se[0].Key != "+globus" {
		t.Fatalf("softenv = %v", se)
	}
}

func TestBenchmarkScore(t *testing.T) {
	_, r := newTestGrid()
	s1 := r.BenchmarkScore("flops", t0)
	s2 := r.BenchmarkScore("flops", t0)
	if s1 != s2 {
		t.Fatal("benchmark not deterministic")
	}
	base := float64(4*2457) / 1000
	if s1 < base*0.9 || s1 > base*1.1 {
		t.Fatalf("score %g outside ±10%% of %g", s1, base)
	}
	if r.BenchmarkScore("flops", t0.Add(2*time.Hour)) == s1 {
		t.Log("scores equal across hours (unlikely but possible)")
	}
}

func TestLinkBandwidth(t *testing.T) {
	g, _ := newTestGrid()
	g.AddSite("Caltech").AddResource("login1.caltech.edu", Hardware{})
	l := g.SetLink("login1.sdsc.edu", "login1.caltech.edu", 990, 0.10, 0.02)
	if _, ok := g.Link("login1.sdsc.edu", "login1.caltech.edu"); !ok {
		t.Fatal("link lookup failed")
	}
	if _, ok := g.Link("login1.caltech.edu", "login1.sdsc.edu"); ok {
		t.Fatal("reverse link should not exist")
	}
	var lo, hi float64
	minBW, maxBW := math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		lo, hi = l.BandwidthAt(t0.Add(time.Duration(h) * time.Hour))
		if lo >= hi {
			t.Fatalf("bounds inverted at hour %d: %g >= %g", h, lo, hi)
		}
		mid := (lo + hi) / 2
		if mid < minBW {
			minBW = mid
		}
		if mid > maxBW {
			maxBW = mid
		}
	}
	if minBW < 990*0.8 || maxBW > 990*1.1 {
		t.Fatalf("bandwidth range [%g, %g] implausible for base 990", minBW, maxBW)
	}
	if maxBW-minBW < 990*0.03 {
		t.Fatalf("no diurnal variation: range [%g, %g]", minBW, maxBW)
	}
}

func TestLinkDegradation(t *testing.T) {
	g, _ := newTestGrid()
	l := g.SetLink("a", "b", 1000, 0, 0)
	l.Degrade(Degradation{From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour), Factor: 0.1, Reason: "bad driver"})
	_, before := l.BandwidthAt(t0)
	_, during := l.BandwidthAt(t0.Add(90 * time.Minute))
	if during > before*0.2 {
		t.Fatalf("degradation not applied: %g vs %g", during, before)
	}
	_, after := l.BandwidthAt(t0.Add(3 * time.Hour))
	if after < before*0.9 {
		t.Fatalf("degradation did not end: %g vs %g", after, before)
	}
}

func TestNewTeraGridShape(t *testing.T) {
	g := NewTeraGrid(1, DefaultTeraGridOptions(t0))
	if len(g.Sites()) != 6 {
		t.Fatalf("sites = %d, want 6", len(g.Sites()))
	}
	res := g.Resources()
	if len(res) != 10 {
		t.Fatalf("resources = %d, want 10", len(res))
	}
	caltech, ok := g.Resource("tg-login1.caltech.teragrid.org")
	if !ok {
		t.Fatal("Caltech login node missing")
	}
	// Table 3 hardware.
	if caltech.Hardware.CPUs != 2 || caltech.Hardware.CPUMHz != 1296 || caltech.Hardware.MemoryGB != 6.0 {
		t.Fatalf("Caltech hardware = %+v", caltech.Hardware)
	}
	// Software stack present.
	for _, pkg := range []string{"globus", "mpich", "atlas", "hdf4", "hdf5", "pbs", "srb", "condor-g"} {
		p, ok := caltech.Package(pkg)
		if !ok {
			t.Fatalf("package %s missing", pkg)
		}
		if _, ok := p.At(t0.Add(time.Hour)); !ok {
			t.Fatalf("package %s has no version at install+1h", pkg)
		}
	}
	// Services present.
	for _, svc := range []string{"gram-gatekeeper", "gridftp", "ssh", "srb"} {
		if _, ok := caltech.Service(svc); !ok {
			t.Fatalf("service %s missing", svc)
		}
	}
	// Environment contract.
	if caltech.Env()["GLOBUS_LOCATION"] == "" {
		t.Fatal("default environment missing GLOBUS_LOCATION")
	}
	if len(caltech.SoftEnv()) == 0 {
		t.Fatal("SoftEnv database empty")
	}
	// Figure 6's path exists with ~990 Mbps base.
	l, ok := g.Link("tg-login1.sdsc.teragrid.org", "tg-login1.caltech.teragrid.org")
	if !ok {
		t.Fatal("SDSC→Caltech link missing")
	}
	lo, hi := l.BandwidthAt(t0.Add(3 * time.Hour))
	if lo < 700 || hi > 1200 {
		t.Fatalf("SDSC→Caltech bandwidth [%g,%g] out of plausible range", lo, hi)
	}
}

func TestTeraGridMondayMaintenance(t *testing.T) {
	g := NewTeraGrid(1, DefaultTeraGridOptions(t0))
	r, _ := g.Resource("tg-login1.sdsc.teragrid.org")
	monday := time.Date(2004, 7, 12, 9, 0, 0, 0, time.UTC)
	if monday.Weekday() != time.Monday {
		t.Fatal("test date not a Monday")
	}
	if !r.InMaintenance(monday) {
		t.Fatal("no Monday maintenance")
	}
	opt := DefaultTeraGridOptions(t0)
	opt.MondayMaintenance = false
	g2 := NewTeraGrid(1, opt)
	r2, _ := g2.Resource("tg-login1.sdsc.teragrid.org")
	if r2.InMaintenance(monday) {
		t.Fatal("maintenance present despite being disabled")
	}
}

func TestTeraGridReporterCount(t *testing.T) {
	n, err := TeraGridReporterCount("tg-login1.caltech.teragrid.org")
	if err != nil || n != 128 {
		t.Fatalf("count = %d, %v", n, err)
	}
	total := 0
	for _, h := range TeraGridHosts {
		total += h.Reporters
	}
	if total != 1060 {
		t.Fatalf("Table 2 total = %d, want 1060", total)
	}
	if _, err := TeraGridReporterCount("nowhere.example.org"); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestPackageCategory(t *testing.T) {
	cases := map[string]string{
		"globus":    "grid",
		"gx-map":    "grid",
		"mpich":     "development",
		"scalapack": "development",
		"superlu":   "development",
		"vtk":       "development",
		"pbs":       "cluster",
		"maui":      "cluster",
		"unknown":   "grid",
	}
	for pkg, want := range cases {
		if got := PackageCategory(pkg); got != want {
			t.Errorf("PackageCategory(%s) = %s, want %s", pkg, got, want)
		}
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]HostKind{
		"tg-viz-login1.uc.teragrid.org": VizHost,
		"tg-login1.sdsc.teragrid.org":   FullHost,
		"rachel.psc.edu":                ReducedHost,
	}
	for host, want := range cases {
		got, err := KindOf(host)
		if err != nil || got != want {
			t.Errorf("KindOf(%s) = %v,%v want %v", host, got, err, want)
		}
	}
	if _, err := KindOf("nowhere"); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestPackageInstallationByKind(t *testing.T) {
	g := NewTeraGrid(1, DefaultTeraGridOptions(t0))
	viz, _ := g.Resource("tg-viz-login1.uc.teragrid.org")
	full, _ := g.Resource("tg-login1.sdsc.teragrid.org")
	reduced, _ := g.Resource("rachel.psc.edu")

	// Viz stack only on the viz node.
	if _, ok := viz.Package("paraview"); !ok {
		t.Error("viz node missing paraview")
	}
	if _, ok := full.Package("paraview"); ok {
		t.Error("full node has paraview")
	}
	// Extended stack everywhere.
	for _, r := range []*Resource{viz, full, reduced} {
		if _, ok := r.Package("scalapack"); !ok {
			t.Errorf("%s missing scalapack", r.Host)
		}
	}
	// gm absent only on reduced hosts.
	if _, ok := full.Package(ReducedSkipPackage); !ok {
		t.Error("full node missing gm")
	}
	if _, ok := reduced.Package(ReducedSkipPackage); ok {
		t.Error("reduced node has gm (no Myrinet on the Alphas)")
	}
}

func TestSoftEnvSizesVaryByHost(t *testing.T) {
	g := NewTeraGrid(1, DefaultTeraGridOptions(t0))
	sizes := map[int]bool{}
	for _, r := range g.Resources() {
		sizes[len(r.SoftEnv())] = true
	}
	if len(sizes) < 5 {
		t.Fatalf("softenv databases not varied: %d distinct sizes", len(sizes))
	}
}
