// Package gridsim is the simulated virtual organization this reproduction
// probes in place of the paper's TeraGrid deployment (see DESIGN.md §3).
//
// It models sites, resources (hosts with hardware characteristics), software
// stacks whose versions change over time, persistent services with
// deterministic failure episodes and weekly maintenance windows, default
// user environments and SoftEnv databases, and inter-site network links
// with diurnal available-bandwidth behaviour.
//
// Every query is a pure function of (entity, time, seed): "is the gatekeeper
// on tg-login1 up at Tuesday 14:03?" always returns the same answer, no
// matter in what order or how often reporters ask. That makes week-long
// simulated experiments reproducible bit-for-bit.
package gridsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"
)

// hash01 maps a seed plus string parts plus an integer to a deterministic
// float64 in [0, 1).
func hash01(seed int64, k int64, parts ...string) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(seed)
	put(k)
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Grid is the root of a simulated VO.
type Grid struct {
	// Seed drives all stochastic behaviour deterministically.
	Seed  int64
	Name  string
	sites map[string]*Site
	links map[string]*Link
}

// New creates an empty grid. All randomness derives from seed.
func New(name string, seed int64) *Grid {
	return &Grid{Name: name, Seed: seed, sites: make(map[string]*Site), links: make(map[string]*Link)}
}

// AddSite registers a site; adding an existing name returns the original.
func (g *Grid) AddSite(name string) *Site {
	if s, ok := g.sites[name]; ok {
		return s
	}
	s := &Site{Name: name, grid: g, resources: make(map[string]*Resource)}
	g.sites[name] = s
	return s
}

// Site returns a site by name.
func (g *Grid) Site(name string) (*Site, bool) {
	s, ok := g.sites[name]
	return s, ok
}

// Sites returns all sites sorted by name.
func (g *Grid) Sites() []*Site {
	names := make([]string, 0, len(g.sites))
	for n := range g.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Site, len(names))
	for i, n := range names {
		out[i] = g.sites[n]
	}
	return out
}

// Resources returns every resource in the grid, sorted by hostname.
func (g *Grid) Resources() []*Resource {
	var out []*Resource
	for _, s := range g.Sites() {
		out = append(out, s.Resources()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Resource finds a resource by hostname anywhere in the grid.
func (g *Grid) Resource(host string) (*Resource, bool) {
	for _, s := range g.sites {
		if r, ok := s.resources[host]; ok {
			return r, true
		}
	}
	return nil, false
}

// Site is one administrative site (e.g. SDSC, NCSA).
type Site struct {
	Name      string
	grid      *Grid
	resources map[string]*Resource
}

// AddResource registers a host at the site.
func (s *Site) AddResource(host string, hw Hardware) *Resource {
	if r, ok := s.resources[host]; ok {
		return r
	}
	r := &Resource{
		Host: host, Site: s, Hardware: hw,
		packages: make(map[string]*Package),
		services: make(map[string]*Service),
		env:      make(map[string]string),
	}
	s.resources[host] = r
	return r
}

// Resources returns the site's resources sorted by hostname.
func (s *Site) Resources() []*Resource {
	hosts := make([]string, 0, len(s.resources))
	for h := range s.resources {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	out := make([]*Resource, len(hosts))
	for i, h := range hosts {
		out[i] = s.resources[h]
	}
	return out
}

// Hardware describes a resource for benchmark-style reporters and the
// Table 3 machine-characteristics listing.
type Hardware struct {
	CPUs      int
	Processor string
	CPUMHz    int
	MemoryGB  float64
}

// Resource is one monitored host.
type Resource struct {
	Host     string
	Site     *Site
	Hardware Hardware

	packages map[string]*Package
	services map[string]*Service
	env      map[string]string
	softenv  []SoftEnvEntry
	windows  []MaintenanceWindow
	outages  []Outage
}

// Grid returns the owning grid.
func (r *Resource) Grid() *Grid { return r.Site.grid }

// MaintenanceWindow is a weekly scheduled downtime (TeraGrid's Monday
// preventative maintenance in the paper's Figure 5).
type MaintenanceWindow struct {
	Weekday time.Weekday
	// Start is the offset into the day (e.g. 8h for 08:00 local-as-UTC).
	Start time.Duration
	// Length of the window.
	Length time.Duration
}

// AddMaintenance schedules a weekly maintenance window.
func (r *Resource) AddMaintenance(w MaintenanceWindow) { r.windows = append(r.windows, w) }

// InMaintenance reports whether t falls inside a maintenance window.
func (r *Resource) InMaintenance(t time.Time) bool {
	for _, w := range r.windows {
		if t.Weekday() != w.Weekday {
			continue
		}
		dayStart := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
		off := t.Sub(dayStart)
		if off >= w.Start && off < w.Start+w.Length {
			return true
		}
	}
	return false
}

// Outage is an explicitly injected failure of one service (or "*" for the
// whole resource) over an absolute interval — the failure-injection hook
// used by tests and experiments.
type Outage struct {
	Service  string
	From, To time.Time
	Reason   string
}

// AddOutage injects a failure interval.
func (r *Resource) AddOutage(o Outage) { r.outages = append(r.outages, o) }

func (r *Resource) injectedOutage(service string, t time.Time) (string, bool) {
	for _, o := range r.outages {
		if (o.Service == "*" || o.Service == service) && !t.Before(o.From) && t.Before(o.To) {
			reason := o.Reason
			if reason == "" {
				reason = "injected outage"
			}
			return reason, true
		}
	}
	return "", false
}

// FailureModel produces deterministic pseudo-random outage episodes: within
// every consecutive epoch of length MTBF, one outage of length MTTR occurs
// with probability Prob, at a deterministic offset derived from the grid
// seed and the entity name. Expected availability ≈ 1 - Prob*MTTR/MTBF.
type FailureModel struct {
	MTBF time.Duration
	MTTR time.Duration
	Prob float64 // 0 disables random failures
}

// downAt reports whether the entity named key is inside a failure episode.
func (fm FailureModel) downAt(seed int64, key string, t time.Time) bool {
	if fm.Prob <= 0 || fm.MTBF <= 0 || fm.MTTR <= 0 {
		return false
	}
	epoch := t.UnixNano() / int64(fm.MTBF)
	if hash01(seed, epoch, key, "occur") >= fm.Prob {
		return false
	}
	span := fm.MTBF - fm.MTTR
	if span < 0 {
		span = 0
	}
	start := time.Duration(hash01(seed, epoch, key, "start") * float64(span))
	off := time.Duration(t.UnixNano() - epoch*int64(fm.MTBF))
	return off >= start && off < start+fm.MTTR
}

// Service is a persistent daemon on a resource (GRAM gatekeeper, GridFTP,
// SSH, SRB, ...).
type Service struct {
	Name    string
	Port    int
	Failure FailureModel
	res     *Resource
}

// AddService registers a service on the resource.
func (r *Resource) AddService(name string, port int, fm FailureModel) *Service {
	s := &Service{Name: name, Port: port, Failure: fm, res: r}
	r.services[name] = s
	return s
}

// Service looks up a service by name.
func (r *Resource) Service(name string) (*Service, bool) {
	s, ok := r.services[name]
	return s, ok
}

// Services returns the resource's services sorted by name.
func (r *Resource) Services() []*Service {
	names := make([]string, 0, len(r.services))
	for n := range r.services {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Service, len(names))
	for i, n := range names {
		out[i] = r.services[n]
	}
	return out
}

// ServiceUp reports whether the named service responds at time t, with a
// human-readable reason when it does not.
func (r *Resource) ServiceUp(name string, t time.Time) (bool, string) {
	if r.InMaintenance(t) {
		return false, "resource in scheduled maintenance"
	}
	if reason, down := r.injectedOutage(name, t); down {
		return false, reason
	}
	s, ok := r.services[name]
	if !ok {
		return false, fmt.Sprintf("no %s service configured", name)
	}
	if s.Failure.downAt(r.Grid().Seed, r.Host+"/"+name, t) {
		return false, fmt.Sprintf("%s not responding (connection timed out)", name)
	}
	return true, ""
}

// VersionEpoch is one installed version of a package, effective From
// onwards.
type VersionEpoch struct {
	From    time.Time
	Version string
	// Broken marks an installation whose unit test fails (e.g. a botched
	// update) even though the version query succeeds.
	Broken bool
}

// Package is one software stack component with a version timeline.
type Package struct {
	Name   string
	epochs []VersionEpoch // sorted by From
	res    *Resource
	// UnitTestFailure adds stochastic unit test failures on top of the
	// timeline (temporal bugs per the paper's service-reliability use case).
	UnitTestFailure FailureModel
}

// InstallPackage records that version is installed from time from onwards.
func (r *Resource) InstallPackage(name, version string, from time.Time) *Package {
	p, ok := r.packages[name]
	if !ok {
		p = &Package{Name: name, res: r}
		r.packages[name] = p
	}
	p.epochs = append(p.epochs, VersionEpoch{From: from, Version: version})
	sort.SliceStable(p.epochs, func(i, j int) bool { return p.epochs[i].From.Before(p.epochs[j].From) })
	return p
}

// BreakPackage marks the installation effective at from as failing its unit
// test (simulating a bad update) while keeping the version query working.
func (r *Resource) BreakPackage(name string, from time.Time) error {
	p, ok := r.packages[name]
	if !ok {
		return fmt.Errorf("gridsim: no package %q on %s", name, r.Host)
	}
	cur, ok := p.At(from)
	if !ok {
		return fmt.Errorf("gridsim: package %q not installed at %v", name, from)
	}
	p.epochs = append(p.epochs, VersionEpoch{From: from, Version: cur.Version, Broken: true})
	sort.SliceStable(p.epochs, func(i, j int) bool { return p.epochs[i].From.Before(p.epochs[j].From) })
	return nil
}

// Package looks up a package by name.
func (r *Resource) Package(name string) (*Package, bool) {
	p, ok := r.packages[name]
	return p, ok
}

// Packages returns the resource's packages sorted by name.
func (r *Resource) Packages() []*Package {
	names := make([]string, 0, len(r.packages))
	for n := range r.packages {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Package, len(names))
	for i, n := range names {
		out[i] = r.packages[n]
	}
	return out
}

// At returns the version epoch in effect at time t.
func (p *Package) At(t time.Time) (VersionEpoch, bool) {
	var cur VersionEpoch
	found := false
	for _, e := range p.epochs {
		if e.From.After(t) {
			break
		}
		cur = e
		found = true
	}
	return cur, found
}

// UnitTestPasses reports whether the package's unit test succeeds at t,
// with a reason on failure.
func (p *Package) UnitTestPasses(t time.Time) (bool, string) {
	r := p.res
	if r.InMaintenance(t) {
		return false, "resource in scheduled maintenance"
	}
	if reason, down := r.injectedOutage("pkg:"+p.Name, t); down {
		return false, reason
	}
	e, ok := p.At(t)
	if !ok {
		return false, fmt.Sprintf("%s not installed", p.Name)
	}
	if e.Broken {
		return false, fmt.Sprintf("%s-%s unit test failed: wrong output", p.Name, e.Version)
	}
	if p.UnitTestFailure.downAt(r.Grid().Seed, r.Host+"/pkgtest/"+p.Name, t) {
		return false, fmt.Sprintf("%s unit test timed out", p.Name)
	}
	return true, ""
}

// SetEnv sets a default-user-environment variable.
func (r *Resource) SetEnv(key, value string) { r.env[key] = value }

// Env returns a copy of the default user environment.
func (r *Resource) Env() map[string]string {
	out := make(map[string]string, len(r.env))
	for k, v := range r.env {
		out[k] = v
	}
	return out
}

// SoftEnvEntry is one key in the resource's SoftEnv database (the paper's
// Section 4.1 environment-manipulation tool).
type SoftEnvEntry struct {
	Key   string
	Value string
}

// AddSoftEnv appends a SoftEnv database entry.
func (r *Resource) AddSoftEnv(key, value string) {
	r.softenv = append(r.softenv, SoftEnvEntry{Key: key, Value: value})
}

// SoftEnv returns the SoftEnv database entries.
func (r *Resource) SoftEnv() []SoftEnvEntry {
	return append([]SoftEnvEntry(nil), r.softenv...)
}

// BenchmarkScore returns a deterministic synthetic performance figure for
// GRASP-style benchmark reporters: proportional to aggregate clock rate
// with small per-hour noise.
func (r *Resource) BenchmarkScore(kind string, t time.Time) float64 {
	base := float64(r.Hardware.CPUs*r.Hardware.CPUMHz) / 1000.0 // "GFLOP-ish"
	hour := t.Unix() / 3600
	noise := 0.95 + 0.1*hash01(r.Grid().Seed, hour, r.Host, "bench", kind)
	return base * noise
}

// Link is a unidirectional network path between two resources with a
// diurnal available-bandwidth model.
type Link struct {
	Src, Dst string
	// BaseMbps is the mean available bandwidth.
	BaseMbps float64
	// DiurnalFrac is the fractional peak-to-mean swing over a day (business
	// hours are busier, so available bandwidth dips mid-day).
	DiurnalFrac float64
	// NoiseFrac is the fractional per-measurement jitter.
	NoiseFrac float64
	grid      *Grid
	// degradations are injected throughput problems (e.g. a bad Ethernet
	// driver after an update, per Section 4.2).
	degradations []Degradation
}

// Degradation scales a link's bandwidth by Factor during an interval.
type Degradation struct {
	From, To time.Time
	Factor   float64
	Reason   string
}

func linkKey(src, dst string) string { return src + "->" + dst }

// SetLink declares (or replaces) the path from src to dst.
func (g *Grid) SetLink(src, dst string, baseMbps, diurnalFrac, noiseFrac float64) *Link {
	l := &Link{Src: src, Dst: dst, BaseMbps: baseMbps, DiurnalFrac: diurnalFrac, NoiseFrac: noiseFrac, grid: g}
	g.links[linkKey(src, dst)] = l
	return l
}

// Link returns the path from src to dst.
func (g *Grid) Link(src, dst string) (*Link, bool) {
	l, ok := g.links[linkKey(src, dst)]
	return l, ok
}

// Degrade injects a throughput degradation.
func (l *Link) Degrade(d Degradation) { l.degradations = append(l.degradations, d) }

// BandwidthAt returns pathload-style lower and upper available-bandwidth
// bounds (Mbps) for a measurement starting at t.
func (l *Link) BandwidthAt(t time.Time) (lower, upper float64) {
	hourOfDay := float64(t.Hour()) + float64(t.Minute())/60
	// Dip centered at 14:00; available bandwidth is lowest mid-afternoon.
	diurnal := 1 - l.DiurnalFrac*0.5*(1+math.Cos((hourOfDay-14)/24*2*math.Pi))
	bw := l.BaseMbps * diurnal
	slot := t.Unix() / 600 // fresh noise every 10 minutes
	noise := 1 + l.NoiseFrac*(2*hash01(l.grid.Seed, slot, l.Src, l.Dst, "noise")-1)
	bw *= noise
	for _, d := range l.degradations {
		if !t.Before(d.From) && t.Before(d.To) {
			bw *= d.Factor
		}
	}
	if bw < 0 {
		bw = 0
	}
	spread := bw * 0.01 * (1 + hash01(l.grid.Seed, slot, l.Src, l.Dst, "spread"))
	return bw - spread, bw + spread
}
