package gridsim

import (
	"fmt"
	"time"
)

// TeraGridHosts lists the ten production login nodes from Table 2 of the
// paper, with their sites and the number of reporters each executed hourly.
var TeraGridHosts = []struct {
	Site      string
	Host      string
	Reporters int
}{
	{"ANL", "tg-viz-login1.uc.teragrid.org", 136},
	{"ANL", "tg-login2.uc.teragrid.org", 128},
	{"Caltech", "tg-login1.caltech.teragrid.org", 128},
	{"NCSA", "tg-login1.ncsa.teragrid.org", 128},
	{"PSC", "rachel.psc.edu", 71},
	{"PSC", "lemieux.psc.edu", 71},
	{"Purdue", "cycle.cc.purdue.edu", 128},
	{"Purdue", "tg-login.rcs.purdue.edu", 71},
	{"SDSC", "tg-login1.sdsc.teragrid.org", 128},
	{"SDSC", "dslogin.sdsc.edu", 71},
}

// GridPackages are the Grid-category software stack components (Section
// 4.1): Globus Toolkit, Condor-G, GridFTP client tools, SRB client.
var GridPackages = map[string]string{
	"globus":   "2.4.3",
	"condor-g": "6.6.5",
	"gridftp":  "2.4.3",
	"srb":      "3.2.1",
	"gsi":      "2.4.3",
	"openssh":  "3.8.1",
	"gpt":      "3.1",
	"myproxy":  "1.14",
	"tgcp":     "1.0",
	"uberftp":  "1.15",
}

// DevelopmentPackages are the Development-category libraries.
var DevelopmentPackages = map[string]string{
	"mpich":        "1.2.5",
	"atlas":        "3.6.0",
	"hdf4":         "4.2r0",
	"hdf5":         "1.6.2",
	"blas":         "3.0",
	"lapack":       "3.0",
	"fftw":         "3.0.1",
	"gm":           "2.0.6",
	"papi":         "3.0",
	"gsl":          "1.5",
	"petsc":        "2.2.0",
	"globus-devel": "2.4.3",
}

// ClusterPackages are the Cluster-category components (batch scheduler and
// friends).
var ClusterPackages = map[string]string{
	"pbs":     "2.3.16",
	"softenv": "1.4.2",
}

// ExtendedPackages are stack components probed only on full-production
// login nodes (the 128/136-reporter rows of Table 2); they are installed
// everywhere but are not part of the core hosting-environment agreement.
var ExtendedPackages = map[string]string{
	"gx-map":    "0.4.1",
	"scalapack": "1.7.0",
	"superlu":   "3.0",
	"maui":      "3.2.6",
}

// VizPackages are the visualization stack present only on the ANL viz
// login node, accounting for its extra reporters in Table 2.
var VizPackages = map[string]string{
	"chromium": "1.7",
	"mesa":     "5.0.2",
	"vtk":      "4.2.1",
	"paraview": "1.8.3",
}

// ReducedSkipPackage is the core package absent on reduced (71-reporter)
// hosts: the PSC Alpha systems had no Myrinet, so no gm driver.
const ReducedSkipPackage = "gm"

// PackageCategory classifies any known package into the status-page
// category used by reporter naming and the agreement ("grid",
// "development", or "cluster").
func PackageCategory(name string) string {
	switch name {
	case "scalapack", "superlu":
		return "development"
	case "maui":
		return "cluster"
	case "gx-map":
		return "grid"
	}
	if _, ok := DevelopmentPackages[name]; ok {
		return "development"
	}
	if _, ok := ClusterPackages[name]; ok {
		return "cluster"
	}
	if _, ok := VizPackages[name]; ok {
		return "development"
	}
	return "grid"
}

// HostKind classifies a TeraGrid host by its Table 2 reporter count.
type HostKind int

// Host kinds.
const (
	// FullHost runs the complete 128-reporter set.
	FullHost HostKind = iota
	// VizHost runs the full set plus the viz stack (136 reporters).
	VizHost
	// ReducedHost runs the trimmed 71-reporter set.
	ReducedHost
)

// KindOf returns the host kind for a Table 2 host.
func KindOf(host string) (HostKind, error) {
	n, err := TeraGridReporterCount(host)
	if err != nil {
		return 0, err
	}
	switch n {
	case 136:
		return VizHost, nil
	case 71:
		return ReducedHost, nil
	default:
		return FullHost, nil
	}
}

// TeraGridServices are the cross-site-tested services from Section 4.1.
var TeraGridServices = []struct {
	Name string
	Port int
}{
	{"gram-gatekeeper", 2119},
	{"gridftp", 2811},
	{"ssh", 22},
	{"srb", 5544},
}

// TeraGridEnv is the default-user-environment contract checked by the
// environment reporter.
var TeraGridEnv = map[string]string{
	"TG_CLUSTER_SCRATCH": "/scratch",
	"TG_APPS_PREFIX":     "/usr/teragrid/apps",
	"GLOBUS_LOCATION":    "/usr/teragrid/globus",
	"SOFTENV_ALIASES":    "/etc/softenv-aliases",
	"MPICH_HOME":         "/usr/teragrid/mpich",
}

// TeraGridOptions tunes the synthetic deployment.
type TeraGridOptions struct {
	// InstallTime is when the software stack was installed (package version
	// epochs start here). Required.
	InstallTime time.Time
	// ServiceFailures applies to every service (zero Prob disables).
	ServiceFailures FailureModel
	// UnitTestFailures applies to every package unit test.
	UnitTestFailures FailureModel
	// MondayMaintenance adds the paper's Monday preventative-maintenance
	// window (08:00–12:00) to every resource.
	MondayMaintenance bool
}

// DefaultTeraGridOptions mirror the deployment the paper observed: Monday
// maintenance plus occasional service failures ("Mondays are
// preventative-maintenance days ... the other times indicate a system
// failure").
func DefaultTeraGridOptions(install time.Time) TeraGridOptions {
	return TeraGridOptions{
		InstallTime:       install,
		ServiceFailures:   FailureModel{MTBF: 3 * 24 * time.Hour, MTTR: 2 * time.Hour, Prob: 0.5},
		UnitTestFailures:  FailureModel{MTBF: 7 * 24 * time.Hour, MTTR: 1 * time.Hour, Prob: 0.3},
		MondayMaintenance: true,
	}
}

// NewTeraGrid builds the ten-resource simulated TeraGrid used by the
// examples and the experiment harness: sites and hosts per Table 2,
// representative hardware per Table 3, the CTSS-style software stack,
// cross-site services, default user environments, SoftEnv databases, and a
// 40 Gb/s-class backbone of inter-site links.
func NewTeraGrid(seed int64, opt TeraGridOptions) *Grid {
	g := New("teragrid", seed)
	hwFor := func(host string) Hardware {
		switch host {
		case "tg-login1.caltech.teragrid.org":
			// From Table 3.
			return Hardware{CPUs: 2, Processor: "Intel Itanium 2", CPUMHz: 1296, MemoryGB: 6.0}
		case "lemieux.psc.edu", "rachel.psc.edu":
			return Hardware{CPUs: 4, Processor: "HP Alpha EV68", CPUMHz: 1000, MemoryGB: 4.0}
		case "dslogin.sdsc.edu":
			return Hardware{CPUs: 8, Processor: "IBM Power4", CPUMHz: 1500, MemoryGB: 16.0}
		default:
			return Hardware{CPUs: 2, Processor: "Intel Itanium 2", CPUMHz: 1300, MemoryGB: 4.0}
		}
	}
	for _, h := range TeraGridHosts {
		site := g.AddSite(h.Site)
		r := site.AddResource(h.Host, hwFor(h.Host))
		kind, _ := KindOf(h.Host)
		install := func(m map[string]string) {
			for name, ver := range m {
				if kind == ReducedHost && name == ReducedSkipPackage {
					continue
				}
				p := r.InstallPackage(name, ver, opt.InstallTime)
				p.UnitTestFailure = opt.UnitTestFailures
			}
		}
		install(GridPackages)
		install(DevelopmentPackages)
		install(ClusterPackages)
		install(ExtendedPackages)
		if kind == VizHost {
			install(VizPackages)
		}
		for _, svc := range TeraGridServices {
			r.AddService(svc.Name, svc.Port, opt.ServiceFailures)
		}
		for k, v := range TeraGridEnv {
			r.SetEnv(k, v)
		}
		// A realistic default login environment carries a few dozen more
		// variables beyond the agreement's required set; they size the env
		// report realistically for the Figure 8 distribution (4–10 KB).
		for i := 0; i < 60; i++ {
			r.SetEnv(fmt.Sprintf("TG_SITE_VAR_%02d", i),
				fmt.Sprintf("/usr/teragrid/site/%s/path-%02d", h.Site, i))
		}
		r.AddSoftEnv("@teragrid", "+globus +mpich +atlas")
		r.AddSoftEnv("+globus", "GLOBUS_LOCATION=/usr/teragrid/globus")
		r.AddSoftEnv("+mpich", "MPICH_HOME=/usr/teragrid/mpich")
		r.AddSoftEnv("+atlas", "ATLAS_HOME=/usr/teragrid/atlas")
		// The SoftEnv database enumerates every installed application and
		// version key; its dump is the largest routine report in the
		// deployment. Database size varies by site, spreading the dumps
		// across the 20–50 KB buckets of Table 4 / Figure 8.
		softEnvEntries := 110 + 15*len(g.Resources())
		for i := 0; i < softEnvEntries; i++ {
			r.AddSoftEnv(fmt.Sprintf("+app-%03d-%d.%d", i, i%7, i%3),
				fmt.Sprintf("APP_%03d_HOME=/usr/teragrid/apps/app-%03d PATH_APPEND=/usr/teragrid/apps/app-%03d/bin MANPATH_APPEND=/usr/teragrid/apps/app-%03d/man", i, i, i, i))
		}
		if opt.MondayMaintenance {
			r.AddMaintenance(MaintenanceWindow{Weekday: time.Monday, Start: 8 * time.Hour, Length: 4 * time.Hour})
		}
	}
	// Full mesh of inter-site links between login nodes; the SDSC→Caltech
	// path mirrors Figure 6's ~990 Mbps pathload measurements.
	hosts := TeraGridHosts
	for _, a := range hosts {
		for _, b := range hosts {
			if a.Host == b.Host {
				continue
			}
			base := 990.0
			if a.Site == b.Site {
				base = 7900.0 // intra-site
			}
			g.SetLink(a.Host, b.Host, base, 0.10, 0.02)
		}
	}
	return g
}

// TeraGridReporterCount returns Table 2's reporters-per-hour figure for a
// host.
func TeraGridReporterCount(host string) (int, error) {
	for _, h := range TeraGridHosts {
		if h.Host == host {
			return h.Reporters, nil
		}
	}
	return 0, fmt.Errorf("gridsim: unknown TeraGrid host %q", host)
}
