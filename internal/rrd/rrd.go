// Package rrd is a from-scratch round-robin database in the style of
// RRDTool, which the paper's depot uses to archive numerical data (Section
// 3.2.2): fixed-step primary data points (PDPs) derived from timestamped
// updates, consolidated into round-robin archives (RRAs) by AVERAGE / MIN /
// MAX / LAST functions, with a heartbeat for staleness and an xff threshold
// controlling how many unknown inputs a consolidated point tolerates.
//
// An Inca archival policy ("granularity of archiving (e.g., every fifth
// measurement) and the length of history to keep") maps onto an RRA with
// Steps = granularity and Rows = history/granularity.
package rrd

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// CF is a consolidation function.
type CF int

// Consolidation functions supported by RRAs.
const (
	Average CF = iota
	Min
	Max
	Last
)

// String returns the RRDTool-style name of the consolidation function.
func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Last:
		return "LAST"
	default:
		return fmt.Sprintf("CF(%d)", int(c))
	}
}

// DSType describes how raw update values convert to a rate/value.
type DSType int

// Data source types.
const (
	// Gauge stores the value as supplied (temperatures, bandwidth
	// estimates, pass percentages).
	Gauge DSType = iota
	// Counter stores the per-second rate of an ever-increasing counter;
	// a decrease marks the interval unknown (counter reset).
	Counter
	// Derive is Counter that permits decreases (signed rate).
	Derive
	// Absolute divides each supplied value by the interval length (counts
	// since last update).
	Absolute
)

// String returns the RRDTool-style name of the data source type.
func (d DSType) String() string {
	switch d {
	case Gauge:
		return "GAUGE"
	case Counter:
		return "COUNTER"
	case Derive:
		return "DERIVE"
	case Absolute:
		return "ABSOLUTE"
	default:
		return fmt.Sprintf("DSType(%d)", int(d))
	}
}

// DS declares one data source.
type DS struct {
	Name string
	Type DSType
	// Heartbeat is the maximum silence between updates before the interval
	// is treated as unknown.
	Heartbeat time.Duration
	// Min and Max clamp validity; use NaN for unbounded.
	Min, Max float64
}

// RRA declares one round-robin archive.
type RRA struct {
	CF CF
	// XFF is the maximum fraction of unknown PDPs a consolidated point may
	// absorb and still be known (0 ≤ XFF < 1).
	XFF float64
	// Steps is how many PDPs consolidate into one row.
	Steps int
	// Rows is the archive length.
	Rows int
}

// rraState is an RRA plus its ring buffer and in-progress consolidation.
type rraState struct {
	def  RRA
	ring [][]float64 // [row][ds]
	// newest is the index of the most recently written row; -1 when empty.
	newest int
	filled int
	// end of the most recently completed consolidation window
	lastEnd time.Time
	// in-progress CDP accumulation
	acc      []cdpAcc
	pdpCount int
	// lastKnown/lastKnownAt track, per data source, the most recent known
	// (non-NaN) consolidated value and the end of its window, so LastValue
	// is O(archives) instead of a Fetch plus backward scan.
	lastKnown   []float64
	lastKnownAt []time.Time
}

type cdpAcc struct {
	sum     float64
	min     float64
	max     float64
	last    float64
	known   int
	unknown int
}

// RingStore holds archive rows outside the DB — the hook the paged
// on-disk format (rrd/file) plugs in so consolidated rows go to pwrites
// instead of in-memory rings. Row indices are positions in the archive's
// circular buffer; rra is the archive's index in declaration order. A row
// index that has never been written may be read only after a write to it
// (the DB reads only rows inside the filled window). Implementations are
// called under the DB's lock and need no locking of their own.
type RingStore interface {
	// WriteRow stores one consolidated row (len = data source count).
	WriteRow(rra, row int, values []float64) error
	// ReadRow loads one row into dst (len = data source count).
	ReadRow(rra, row int, dst []float64) error
}

// DB is a round-robin database. Rows live in memory by default, or in an
// external RingStore (NewExternal) for disk-backed archives. All methods
// are safe for concurrent use.
type DB struct {
	mu         sync.Mutex
	step       time.Duration
	ds         []DS
	rras       []*rraState
	rings      RingStore // nil = in-memory rings
	created    time.Time
	lastUpdate time.Time
	lastRaw    []float64 // previous raw input per DS (Counter/Derive)
	// PDP accumulation for the step window containing lastUpdate.
	pdpSum   []float64       // per DS: sum of rate*seconds over known subintervals
	pdpKnown []time.Duration // per DS: known time accumulated in the current window
	updates  uint64
}

// New creates a database. start becomes the initial "last update" instant;
// the first real update must be after it.
func New(start time.Time, step time.Duration, ds []DS, rras []RRA) (*DB, error) {
	return newDB(start, step, ds, rras, nil)
}

// NewExternal creates a database whose consolidated rows live in the given
// RingStore instead of in-memory rings — the constructor the paged on-disk
// format uses. Consolidation state stays in memory (persist it via State);
// only the rows, the bulk of an archive, go through the store.
func NewExternal(start time.Time, step time.Duration, ds []DS, rras []RRA, rings RingStore) (*DB, error) {
	if rings == nil {
		return nil, fmt.Errorf("rrd: NewExternal requires a ring store")
	}
	return newDB(start, step, ds, rras, rings)
}

func newDB(start time.Time, step time.Duration, ds []DS, rras []RRA, rings RingStore) (*DB, error) {
	if step <= 0 {
		return nil, fmt.Errorf("rrd: non-positive step %v", step)
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("rrd: no data sources")
	}
	names := make(map[string]bool)
	for i, d := range ds {
		if d.Name == "" {
			return nil, fmt.Errorf("rrd: data source %d has no name", i)
		}
		if names[d.Name] {
			return nil, fmt.Errorf("rrd: duplicate data source %q", d.Name)
		}
		names[d.Name] = true
		if d.Heartbeat <= 0 {
			return nil, fmt.Errorf("rrd: data source %q has non-positive heartbeat", d.Name)
		}
	}
	if len(rras) == 0 {
		return nil, fmt.Errorf("rrd: no archives")
	}
	db := &DB{
		step:       step,
		ds:         append([]DS(nil), ds...),
		rings:      rings,
		created:    start,
		lastUpdate: start,
		lastRaw:    make([]float64, len(ds)),
		pdpSum:     make([]float64, len(ds)),
		pdpKnown:   make([]time.Duration, len(ds)),
	}
	for i := range db.lastRaw {
		db.lastRaw[i] = math.NaN()
	}
	base := start.Truncate(step)
	for _, r := range rras {
		if r.Steps <= 0 || r.Rows <= 0 {
			return nil, fmt.Errorf("rrd: archive %s has non-positive steps/rows", r.CF)
		}
		if r.XFF < 0 || r.XFF >= 1 {
			return nil, fmt.Errorf("rrd: archive %s xff %g out of [0,1)", r.CF, r.XFF)
		}
		st := &rraState{def: r, newest: -1, lastEnd: base, acc: make([]cdpAcc, len(ds))}
		if rings == nil {
			st.ring = make([][]float64, r.Rows)
			for i := range st.ring {
				st.ring[i] = make([]float64, len(ds))
				for j := range st.ring[i] {
					st.ring[i][j] = math.NaN()
				}
			}
		}
		st.initLastKnown(len(ds))
		resetAcc(st.acc)
		db.rras = append(db.rras, st)
	}
	return db, nil
}

func resetAcc(acc []cdpAcc) {
	for i := range acc {
		acc[i] = cdpAcc{min: math.Inf(1), max: math.Inf(-1), last: math.NaN()}
	}
}

// Step returns the PDP step.
func (db *DB) Step() time.Duration { return db.step }

// Last returns the time of the most recent update.
func (db *DB) Last() time.Time {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastUpdate
}

// Updates returns the number of successful updates applied.
func (db *DB) Updates() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updates
}

// DSNames returns the data source names in declaration order.
func (db *DB) DSNames() []string {
	out := make([]string, len(db.ds))
	for i, d := range db.ds {
		out[i] = d.Name
	}
	return out
}

// Update records raw values for every data source at time t. Updates must
// be strictly newer than the previous one. Use math.NaN for an unknown
// value.
func (db *DB) Update(t time.Time, values ...float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updateLocked(t, values)
}

// Sample is one timestamped update for a single-source database, the unit
// UpdateBatch consumes.
type Sample struct {
	Time  time.Time
	Value float64
}

// UpdateBatch applies a run of samples to a single-source database under
// one lock acquisition, amortizing locking and consolidation across the
// batch — the depot's asynchronous archive workers drain their queues
// through it. Samples that are not strictly newer than the previous
// update are dropped (as RRDTool drops them) without failing the batch;
// the applied count is returned.
func (db *DB) UpdateBatch(samples []Sample) (int, error) {
	if len(db.ds) != 1 {
		return 0, fmt.Errorf("rrd: UpdateBatch needs a single-source database, have %d sources", len(db.ds))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	applied := 0
	var vals [1]float64
	for _, s := range samples {
		vals[0] = s.Value
		if db.updateLocked(s.Time, vals[:]) == nil {
			applied++
		}
	}
	return applied, nil
}

func (db *DB) updateLocked(t time.Time, values []float64) error {
	if len(values) != len(db.ds) {
		return fmt.Errorf("rrd: update has %d values, want %d", len(values), len(db.ds))
	}
	if !t.After(db.lastUpdate) {
		return fmt.Errorf("rrd: update at %v not after last update %v", t, db.lastUpdate)
	}
	dt := t.Sub(db.lastUpdate)
	secs := dt.Seconds()

	// Convert raw inputs to rates/values per DS type.
	rates := make([]float64, len(db.ds))
	for i, d := range db.ds {
		v := values[i]
		switch d.Type {
		case Gauge:
			rates[i] = v
		case Counter:
			prev := db.lastRaw[i]
			if math.IsNaN(prev) || math.IsNaN(v) || v < prev {
				rates[i] = math.NaN()
			} else {
				rates[i] = (v - prev) / secs
			}
		case Derive:
			prev := db.lastRaw[i]
			if math.IsNaN(prev) || math.IsNaN(v) {
				rates[i] = math.NaN()
			} else {
				rates[i] = (v - prev) / secs
			}
		case Absolute:
			if math.IsNaN(v) {
				rates[i] = math.NaN()
			} else {
				rates[i] = v / secs
			}
		}
		if dt > d.Heartbeat {
			rates[i] = math.NaN()
		}
		if !math.IsNaN(rates[i]) {
			if !math.IsNaN(d.Min) && rates[i] < d.Min {
				rates[i] = math.NaN()
			}
			if !math.IsNaN(d.Max) && rates[i] > d.Max {
				rates[i] = math.NaN()
			}
		}
		db.lastRaw[i] = v
	}

	// Distribute the interval across step windows, finalizing each PDP the
	// interval completes. Within one Update the rate is constant, so each
	// segment contributes rate*segmentSeconds to its window's accumulator.
	cursor := db.lastUpdate
	for {
		windowEnd := cursor.Truncate(db.step).Add(db.step)
		segEnd := windowEnd
		if t.Before(segEnd) {
			segEnd = t
		}
		seg := segEnd.Sub(cursor)
		for i := range rates {
			if !math.IsNaN(rates[i]) {
				db.pdpSum[i] += rates[i] * seg.Seconds()
				db.pdpKnown[i] += seg
			}
		}
		cursor = segEnd
		if cursor.Before(windowEnd) {
			break // interval consumed; PDP window still open
		}
		// Finalize the PDP for [windowEnd-step, windowEnd): a data source
		// must have been known for at least half the window (RRDTool's
		// rule) or its PDP is unknown.
		pdp := make([]float64, len(db.ds))
		for i := range pdp {
			if db.pdpKnown[i]*2 < db.step {
				pdp[i] = math.NaN()
			} else {
				pdp[i] = db.pdpSum[i] / db.pdpKnown[i].Seconds()
			}
			db.pdpSum[i] = 0
			db.pdpKnown[i] = 0
		}
		for ri := range db.rras {
			if err := db.pushPDP(ri, windowEnd, pdp); err != nil {
				return err
			}
		}
		if !cursor.Before(t) {
			break
		}
	}
	db.lastUpdate = t
	db.updates++
	return nil
}

// pushPDP folds one finalized PDP (for the window ending at end) into the
// archive's in-progress consolidation. A completed consolidation writes
// one row — to the in-memory ring, or through the external RingStore,
// whose write error (disk full, closed file) fails the update before any
// ring state advances.
func (db *DB) pushPDP(ri int, end time.Time, pdp []float64) error {
	r := db.rras[ri]
	for i, v := range pdp {
		a := &r.acc[i]
		if math.IsNaN(v) {
			a.unknown++
		} else {
			a.known++
			a.sum += v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			a.last = v
		}
	}
	r.pdpCount++
	if r.pdpCount < r.def.Steps {
		return nil
	}
	row := make([]float64, len(pdp))
	for i := range pdp {
		a := &r.acc[i]
		if float64(a.unknown)/float64(r.def.Steps) > r.def.XFF || a.known == 0 {
			row[i] = math.NaN()
			continue
		}
		switch r.def.CF {
		case Average:
			row[i] = a.sum / float64(a.known)
		case Min:
			row[i] = a.min
		case Max:
			row[i] = a.max
		case Last:
			row[i] = a.last
		}
	}
	next := (r.newest + 1) % r.def.Rows
	if db.rings != nil {
		if err := db.rings.WriteRow(ri, next, row); err != nil {
			return err
		}
	} else {
		r.ring[next] = row
	}
	r.newest = next
	if r.filled < r.def.Rows {
		r.filled++
	}
	r.lastEnd = end
	r.pdpCount = 0
	for i, v := range row {
		if !math.IsNaN(v) {
			r.lastKnown[i] = v
			r.lastKnownAt[i] = end
		}
	}
	resetAcc(r.acc)
	return nil
}

// initLastKnown allocates the last-known tracking for n data sources.
func (r *rraState) initLastKnown(n int) {
	r.lastKnown = make([]float64, n)
	r.lastKnownAt = make([]time.Time, n)
	for i := range r.lastKnown {
		r.lastKnown[i] = math.NaN()
	}
}

// LastValue returns the most recent known consolidated value for the
// first data source under the given consolidation function, or NaN when
// no known point has been consolidated yet. It is O(archives): each
// archive tracks its own most recent known row as rows are written, so
// no ring scan or series fetch happens here.
func (db *DB) LastValue(cf CF) float64 {
	v, _ := db.lastKnownDS(cf, 0)
	return v
}

// LastKnown returns LastValue's value together with the end of its
// consolidation window (zero when no known point exists). Callers use the
// time to bound how stale a "last" value may be.
func (db *DB) LastKnown(cf CF) (float64, time.Time) {
	return db.lastKnownDS(cf, 0)
}

// LastValueDS is LastValue for the data source at index ds.
func (db *DB) LastValueDS(cf CF, ds int) float64 {
	v, _ := db.lastKnownDS(cf, ds)
	return v
}

func (db *DB) lastKnownDS(cf CF, ds int) (float64, time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if ds < 0 || ds >= len(db.ds) {
		return math.NaN(), time.Time{}
	}
	best := math.NaN()
	var bestAt time.Time
	for _, r := range db.rras {
		if r.def.CF != cf || math.IsNaN(r.lastKnown[ds]) {
			continue
		}
		if bestAt.IsZero() || r.lastKnownAt[ds].After(bestAt) {
			best, bestAt = r.lastKnown[ds], r.lastKnownAt[ds]
		}
	}
	return best, bestAt
}

// Point is one fetched sample: the end of its consolidation window and one
// value per data source.
type Point struct {
	Time   time.Time
	Values []float64
}

// Series is the result of a Fetch.
type Series struct {
	CF         CF
	Resolution time.Duration
	DSNames    []string
	Points     []Point
}

// Values returns the series for the named data source.
func (s *Series) Values(ds string) ([]float64, error) {
	idx := -1
	for i, n := range s.DSNames {
		if n == ds {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("rrd: no data source %q", ds)
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Values[idx]
	}
	return out, nil
}

// Fetch returns consolidated data with the given CF covering [start, end].
// It picks the finest-resolution archive with that CF whose retention
// reaches back to start (falling back to the longest-retention archive when
// none does, as RRDTool does).
func (db *DB) Fetch(cf CF, start, end time.Time) (*Series, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if end.Before(start) {
		return nil, fmt.Errorf("rrd: fetch end %v before start %v", end, start)
	}
	type candidate struct {
		idx int // index in db.rras, the external RingStore's archive key
		r   *rraState
	}
	var candidates []candidate
	for i, r := range db.rras {
		if r.def.CF == cf {
			candidates = append(candidates, candidate{i, r})
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("rrd: no archive with CF %s", cf)
	}
	// Sort by resolution fine→coarse.
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].r.def.Steps < candidates[j].r.def.Steps
	})
	chosenCand := candidates[len(candidates)-1]
	for _, c := range candidates {
		res := db.step * time.Duration(c.r.def.Steps)
		oldest := c.r.lastEnd.Add(-time.Duration(c.r.filled) * res)
		if !oldest.After(start) {
			chosenCand = c
			break
		}
	}
	chosen := chosenCand.r
	res := db.step * time.Duration(chosen.def.Steps)
	s := &Series{CF: cf, Resolution: res, DSNames: db.DSNames()}
	if chosen.filled == 0 {
		return s, nil
	}
	oldestIdx := (chosen.newest - chosen.filled + 1 + chosen.def.Rows*2) % chosen.def.Rows
	for i := 0; i < chosen.filled; i++ {
		rowTime := chosen.lastEnd.Add(-time.Duration(chosen.filled-1-i) * res)
		if rowTime.Before(start) || rowTime.After(end) {
			continue
		}
		idx := (oldestIdx + i) % chosen.def.Rows
		vals := make([]float64, len(db.ds))
		if db.rings != nil {
			if err := db.rings.ReadRow(chosenCand.idx, idx, vals); err != nil {
				return nil, err
			}
		} else {
			copy(vals, chosen.ring[idx])
		}
		s.Points = append(s.Points, Point{Time: rowTime, Values: vals})
	}
	return s, nil
}
