package rrd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Durable archives — the paper's future-work "improved data archival
// methods". A DB serializes to a compact binary image (magic "INCARRD",
// version 1) capturing every data source, archive ring, and in-progress
// consolidation, so a depot restart loses nothing.

const persistMagic = "INCARRD1"

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) i64(v int64)         { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64)       { b.u64(math.Float64bits(v)) }
func (b *binWriter) dur(v time.Duration) { b.i64(int64(v)) }
func (b *binWriter) time(v time.Time)    { b.i64(v.UnixNano()) }
func (b *binWriter) str(s string) {
	b.u64(uint64(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(b.r, buf[:]); err != nil {
		b.err = err
		return 0
	}
	return binary.BigEndian.Uint64(buf[:])
}

func (b *binReader) i64() int64         { return int64(b.u64()) }
func (b *binReader) f64() float64       { return math.Float64frombits(b.u64()) }
func (b *binReader) dur() time.Duration { return time.Duration(b.i64()) }
func (b *binReader) time() time.Time    { return time.Unix(0, b.i64()).UTC() }
func (b *binReader) str() string {
	n := b.u64()
	if b.err != nil {
		return ""
	}
	if n > 1<<20 {
		b.err = fmt.Errorf("rrd: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return ""
	}
	return string(buf)
}

// WriteTo serializes the database. It implements io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cw := &countingWriter{w: w}
	b := &binWriter{w: bufio.NewWriter(cw)}
	b.str(persistMagic)
	b.dur(db.step)
	b.time(db.created)
	b.time(db.lastUpdate)
	b.u64(db.updates)
	b.u64(uint64(len(db.ds)))
	for i, d := range db.ds {
		b.str(d.Name)
		b.u64(uint64(d.Type))
		b.dur(d.Heartbeat)
		b.f64(d.Min)
		b.f64(d.Max)
		b.f64(db.lastRaw[i])
		b.f64(db.pdpSum[i])
		b.dur(db.pdpKnown[i])
	}
	b.u64(uint64(len(db.rras)))
	rowBuf := make([]float64, len(db.ds))
	for ri, r := range db.rras {
		b.u64(uint64(r.def.CF))
		b.f64(r.def.XFF)
		b.u64(uint64(r.def.Steps))
		b.u64(uint64(r.def.Rows))
		b.i64(int64(r.newest))
		b.i64(int64(r.filled))
		b.time(r.lastEnd)
		b.u64(uint64(r.pdpCount))
		for _, a := range r.acc {
			b.f64(a.sum)
			b.f64(a.min)
			b.f64(a.max)
			b.f64(a.last)
			b.u64(uint64(a.known))
			b.u64(uint64(a.unknown))
		}
		for j := 0; j < r.def.Rows; j++ {
			switch {
			case db.rings == nil:
				for _, v := range r.ring[j] {
					b.f64(v)
				}
			case j < r.filled:
				// External rings: rows are written sequentially from index 0,
				// so exactly the first `filled` indices have ever been stored
				// (after a wrap filled == Rows and every index is live).
				if err := db.rings.ReadRow(ri, j, rowBuf); err != nil {
					if b.err == nil {
						b.err = err
					}
				}
				for _, v := range rowBuf {
					b.f64(v)
				}
			default:
				// Never-written rows are unknown, as the in-memory rings
				// initialize them — the images stay byte-identical.
				for range db.ds {
					b.f64(math.NaN())
				}
			}
		}
	}
	if b.err == nil {
		b.err = b.w.Flush()
	}
	return cw.n, b.err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadDB deserializes a database written by WriteTo.
func ReadDB(r io.Reader) (*DB, error) {
	b := &binReader{r: bufio.NewReader(r)}
	if magic := b.str(); magic != persistMagic {
		if b.err != nil {
			return nil, fmt.Errorf("rrd: read header: %w", b.err)
		}
		return nil, fmt.Errorf("rrd: bad magic %q", magic)
	}
	db := &DB{}
	db.step = b.dur()
	db.created = b.time()
	db.lastUpdate = b.time()
	db.updates = b.u64()
	nds := b.u64()
	if b.err == nil && (nds == 0 || nds > 1<<16) {
		return nil, fmt.Errorf("rrd: implausible data source count %d", nds)
	}
	for i := uint64(0); i < nds && b.err == nil; i++ {
		var d DS
		d.Name = b.str()
		d.Type = DSType(b.u64())
		d.Heartbeat = b.dur()
		d.Min = b.f64()
		d.Max = b.f64()
		db.ds = append(db.ds, d)
		db.lastRaw = append(db.lastRaw, b.f64())
		db.pdpSum = append(db.pdpSum, b.f64())
		db.pdpKnown = append(db.pdpKnown, b.dur())
	}
	nrra := b.u64()
	if b.err == nil && (nrra == 0 || nrra > 1<<16) {
		return nil, fmt.Errorf("rrd: implausible archive count %d", nrra)
	}
	for i := uint64(0); i < nrra && b.err == nil; i++ {
		st := &rraState{}
		st.def.CF = CF(b.u64())
		st.def.XFF = b.f64()
		st.def.Steps = int(b.u64())
		st.def.Rows = int(b.u64())
		st.newest = int(b.i64())
		st.filled = int(b.i64())
		st.lastEnd = b.time()
		st.pdpCount = int(b.u64())
		if b.err == nil && (st.def.Rows <= 0 || st.def.Rows > 1<<24 || st.def.Steps <= 0) {
			return nil, fmt.Errorf("rrd: implausible archive geometry %d×%d", st.def.Steps, st.def.Rows)
		}
		st.acc = make([]cdpAcc, nds)
		for j := range st.acc {
			st.acc[j].sum = b.f64()
			st.acc[j].min = b.f64()
			st.acc[j].max = b.f64()
			st.acc[j].last = b.f64()
			st.acc[j].known = int(b.u64())
			st.acc[j].unknown = int(b.u64())
		}
		st.ring = make([][]float64, st.def.Rows)
		for j := range st.ring {
			row := make([]float64, nds)
			for k := range row {
				row[k] = b.f64()
			}
			st.ring[j] = row
		}
		// The last-known tracking behind LastValue is derived state, not
		// part of the image: reconstruct it with one newest-first ring
		// scan so the on-disk format stays at version 1.
		st.initLastKnown(int(nds))
		if b.err == nil {
			res := db.step * time.Duration(st.def.Steps)
			missing := int(nds)
			for j := 0; j < st.filled && missing > 0; j++ {
				idx := ((st.newest-j)%st.def.Rows + st.def.Rows) % st.def.Rows
				at := st.lastEnd.Add(-time.Duration(j) * res)
				for k, v := range st.ring[idx] {
					if math.IsNaN(st.lastKnown[k]) && !math.IsNaN(v) {
						st.lastKnown[k], st.lastKnownAt[k] = v, at
						missing--
					}
				}
			}
		}
		db.rras = append(db.rras, st)
	}
	if b.err != nil {
		return nil, fmt.Errorf("rrd: truncated image: %w", b.err)
	}
	return db, nil
}
