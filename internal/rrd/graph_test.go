package rrd

import (
	"math"
	"strings"
	"testing"
	"time"
)

func seriesWith(vals []float64) *Series {
	s := &Series{CF: Average, Resolution: time.Minute, DSNames: []string{"v"}}
	for i, v := range vals {
		s.Points = append(s.Points, Point{Time: t0.Add(time.Duration(i) * time.Minute), Values: []float64{v}})
	}
	return s
}

func TestGraphBasic(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 50 + 40*math.Sin(float64(i)/10)
	}
	out, err := Graph(seriesWith(vals), "v", GraphOptions{Title: "bandwidth", YLabel: "Mbps", Width: 60, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bandwidth") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no plot marks:\n%s", out)
	}
	if !strings.Contains(out, "Mbps") {
		t.Fatalf("missing y label:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestGraphUnknownDS(t *testing.T) {
	if _, err := Graph(seriesWith([]float64{1}), "ghost", GraphOptions{}); err == nil {
		t.Fatal("unknown DS accepted")
	}
}

func TestGraphAllNaN(t *testing.T) {
	out, err := Graph(seriesWith([]float64{math.NaN(), math.NaN()}), "v", GraphOptions{Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "*") {
		t.Fatalf("marks plotted for all-unknown series:\n%s", out)
	}
}

func TestGraphFixedRangeClamps(t *testing.T) {
	out, err := Graph(seriesWith([]float64{-50, 0, 50, 150}), "v", GraphOptions{YMin: 0, YMax: 100, Width: 8, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "0.00") {
		t.Fatalf("fixed range labels missing:\n%s", out)
	}
}

func TestGraphConstantSeries(t *testing.T) {
	out, err := Graph(seriesWith([]float64{5, 5, 5}), "v", GraphOptions{Width: 12, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not plotted:\n%s", out)
	}
}

func TestGraphEmptySeries(t *testing.T) {
	s := &Series{CF: Average, Resolution: time.Minute, DSNames: []string{"v"}}
	out, err := Graph(s, "v", GraphOptions{Width: 10, Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestSparkLine(t *testing.T) {
	got := SparkLine([]float64{0, 1, 2, 3})
	if len([]rune(got)) != 4 {
		t.Fatalf("length = %d", len([]rune(got)))
	}
	if got[0] == got[len(got)-1] {
		t.Fatalf("no variation: %q", got)
	}
	if s := SparkLine([]float64{math.NaN(), math.NaN()}); s != "··" {
		t.Fatalf("all-NaN = %q", s)
	}
	if s := SparkLine([]float64{7, 7}); !strings.HasPrefix(s, "▁") {
		t.Fatalf("constant = %q", s)
	}
	if s := SparkLine([]float64{1, math.NaN(), 2}); []rune(s)[1] != '·' {
		t.Fatalf("NaN gap = %q", s)
	}
}
