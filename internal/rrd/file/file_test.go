package file

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"inca/internal/rrd"
)

var testPolicy = rrd.ArchivalPolicy{
	Step:        30 * time.Second,
	Granularity: 2,
	History:     30 * time.Minute, // 30 rows per CF
	CFs:         []rrd.CF{rrd.Average, rrd.Min, rrd.Max, rrd.Last},
}

var testStart = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// drive pushes the same pseudo-random sample stream (with gaps and unknowns)
// into every sink.
func drive(t *testing.T, n int, sinks ...interface {
	Update(time.Time, ...float64) error
}) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	at := testStart
	for i := 0; i < n; i++ {
		at = at.Add(testPolicy.Step + time.Duration(rng.Intn(5))*time.Second)
		v := 100 + 40*math.Sin(float64(i)/9) + rng.Float64()*10
		if rng.Intn(17) == 0 {
			v = math.NaN()
		}
		if rng.Intn(23) == 0 {
			at = at.Add(5 * testPolicy.Step) // heartbeat gap
		}
		for _, s := range sinks {
			if err := s.Update(at, v); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
}

func image(t *testing.T, w io.WriterTo) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func mustImage(t *testing.T, mem *rrd.DB, disk *DB) ([]byte, []byte) {
	t.Helper()
	var mb, db bytes.Buffer
	if _, err := mem.WriteTo(&mb); err != nil {
		t.Fatalf("memory WriteTo: %v", err)
	}
	if _, err := disk.WriteTo(&db); err != nil {
		t.Fatalf("disk WriteTo: %v", err)
	}
	return mb.Bytes(), db.Bytes()
}

// TestDiskMatchesMemory drives identical sample streams through an
// in-memory DB and a disk-backed one: every consolidation function must
// fetch the same points and the snapshot images must be byte-identical —
// the property that makes storage backends interchangeable under the depot.
func TestDiskMatchesMemory(t *testing.T) {
	for _, n := range []int{5, 40, 400} { // partial fill, full, wrapped many times
		mem, err := rrd.NewFromPolicy(testStart, "bw", testPolicy)
		if err != nil {
			t.Fatal(err)
		}
		disk, err := CreateFromPolicy(filepath.Join(t.TempDir(), "bw.rrd"), testStart, "bw", testPolicy)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, n, mem, disk)

		start, end := testStart, testStart.Add(4*time.Hour)
		for _, cf := range testPolicy.CFs {
			ms, err := mem.Fetch(cf, start, end)
			if err != nil {
				t.Fatalf("n=%d mem fetch %v: %v", n, cf, err)
			}
			ds, err := disk.Fetch(cf, start, end)
			if err != nil {
				t.Fatalf("n=%d disk fetch %v: %v", n, cf, err)
			}
			if len(ms.Points) != len(ds.Points) {
				t.Fatalf("n=%d cf=%v: %d vs %d points", n, cf, len(ms.Points), len(ds.Points))
			}
			for i := range ms.Points {
				mv, dv := ms.Points[i].Values[0], ds.Points[i].Values[0]
				if !ms.Points[i].Time.Equal(ds.Points[i].Time) ||
					(mv != dv && !(math.IsNaN(mv) && math.IsNaN(dv))) {
					t.Fatalf("n=%d cf=%v point %d: mem %v=%v disk %v=%v",
						n, cf, i, ms.Points[i].Time, mv, ds.Points[i].Time, dv)
				}
			}
			if mlv, dlv := mem.LastValue(cf), disk.LastValue(cf); mlv != dlv && !(math.IsNaN(mlv) && math.IsNaN(dlv)) {
				t.Fatalf("n=%d cf=%v last value: mem %v disk %v", n, cf, mlv, dlv)
			}
		}
		mi, di := mustImage(t, mem, disk)
		if !bytes.Equal(mi, di) {
			t.Fatalf("n=%d: snapshot images differ (%d vs %d bytes)", n, len(mi), len(di))
		}
		if err := disk.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestReopenRoundTrip closes a populated archive, reopens it, and checks the
// restored state serves identical data and accepts further updates exactly
// like the never-closed in-memory twin.
func TestReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.rrd")
	mem, err := rrd.NewFromPolicy(testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := CreateFromPolicy(path, testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, 120, mem, disk)
	before, _ := mustImage(t, mem, disk)
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	disk, err = Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer disk.Close()
	var buf bytes.Buffer
	if _, err := disk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, buf.Bytes()) {
		t.Fatalf("image changed across reopen (%d vs %d bytes)", len(before), buf.Len())
	}
	if got, want := disk.Updates(), mem.Updates(); got != want {
		t.Fatalf("updates counter: got %d want %d", got, want)
	}

	// Continue the identical stream; equivalence must hold across the reopen.
	rng := rand.New(rand.NewSource(11))
	at := disk.Last()
	for i := 0; i < 150; i++ {
		at = at.Add(testPolicy.Step)
		v := float64(rng.Intn(500))
		if err := mem.Update(at, v); err != nil {
			t.Fatal(err)
		}
		if err := disk.Update(at, v); err != nil {
			t.Fatal(err)
		}
	}
	mi, di := mustImage(t, mem, disk)
	if !bytes.Equal(mi, di) {
		t.Fatalf("post-reopen images differ")
	}
}

// TestUpdateBatch checks the batched path (one state write per run) matches
// per-sample updates.
func TestUpdateBatch(t *testing.T) {
	dir := t.TempDir()
	one, err := CreateFromPolicy(filepath.Join(dir, "one.rrd"), testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := CreateFromPolicy(filepath.Join(dir, "batch.rrd"), testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	var samples []rrd.Sample
	at := testStart
	for i := 0; i < 100; i++ {
		at = at.Add(testPolicy.Step)
		samples = append(samples, rrd.Sample{Time: at, Value: float64(i * 3)})
		if err := one.Update(at, float64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := batch.UpdateBatch(samples)
	if err != nil || n != len(samples) {
		t.Fatalf("UpdateBatch applied %d err %v", n, err)
	}
	oi, bi := image(t, one), image(t, batch)
	if !bytes.Equal(oi, bi) {
		t.Fatalf("batch image differs from per-sample image")
	}
	one.Close()
	batch.Close()
}

// TestTornStateFallsBack corrupts the most recent state slot, as a crash
// mid-pwrite would, and expects Open to recover from the older slot.
func TestTornStateFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.rrd")
	disk, err := CreateFromPolicy(path, testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	at := testStart
	for i := 0; i < 10; i++ {
		at = at.Add(testPolicy.Step)
		if err := disk.Update(at, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	geom, seq := disk.geom, disk.seq
	wantUpdates := disk.Updates() - 1 // newest slot dies; prior state loses one update
	// Drop the handle without Close's final state flush — a crash doesn't
	// get to write a clean shutdown state.
	if err := disk.f.Close(); err != nil {
		t.Fatal(err)
	}
	newest := seq % 2

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over the newest slot's payload so its CRC fails.
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xde}, 32), geom.stateOff+int64(newest)*geom.slotStride+slotHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	disk, err = Open(path)
	if err != nil {
		t.Fatalf("open after torn state: %v", err)
	}
	defer disk.Close()
	if got := disk.Updates(); got != wantUpdates {
		t.Fatalf("recovered updates=%d want %d", got, wantUpdates)
	}
	// The archive must still accept the lost update again (replay path).
	if err := disk.Update(at, 9); err != nil {
		t.Fatalf("update after fallback: %v", err)
	}
}

// TestBothSlotsDeadFails destroys both state slots; Open must refuse rather
// than serve garbage.
func TestBothSlotsDeadFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.rrd")
	disk, err := CreateFromPolicy(path, testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	geom := disk.geom
	disk.Close()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < 2; slot++ {
		if _, err := f.WriteAt(bytes.Repeat([]byte{0xAA}, 48), geom.stateOff+slot*geom.slotStride); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := Open(path); err == nil {
		t.Fatal("Open succeeded with both state slots corrupt")
	}
}

// TestOpenRejectsGarbage feeds Open a non-archive file.
func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.rrd")
	if err := os.WriteFile(path, []byte("this is not an archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted garbage")
	}
}

// TestCreateRefusesExisting double-creates.
func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.rrd")
	d, err := CreateFromPolicy(path, testStart, "bw", testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := CreateFromPolicy(path, testStart, "bw", testPolicy); err == nil {
		t.Fatal("Create overwrote an existing archive")
	}
}

// TestSparseAllocation verifies the file's apparent size covers the rings
// while the regions stay page-aligned; block usage stays tiny until rows
// are written.
func TestSparseAllocation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.rrd")
	pol := rrd.ArchivalPolicy{Step: time.Second, History: 100000 * time.Second, CFs: []rrd.CF{rrd.Average}}
	d, err := CreateFromPolicy(path, testStart, "bw", pol)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 100000*8 {
		t.Fatalf("apparent size %d too small for 100k rows", fi.Size())
	}
	// Geometry invariants: rings page-aligned past the state slots.
	if d.geom.ringOff[0]%pageSize != 0 || d.geom.stateOff%pageSize != 0 {
		t.Fatalf("regions not page-aligned: state %d ring %d", d.geom.stateOff, d.geom.ringOff[0])
	}
}
