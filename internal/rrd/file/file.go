// Package file is the paged on-disk round-robin database format — the
// storage engine behind `inca-server -storage=disk` and the answer to the
// paper's deferred "improved data archival methods": instead of holding
// every series in RAM and rewriting a monolithic snapshot, one update
// touches O(archives) pages in place via pwrite, the layout real rrdtool
// files use.
//
// Layout (all integers big-endian, offsets page-aligned):
//
//	┌──────────────────────────────────────────────────────────────┐
//	│ static header   magic INCARRDF, version, page size, step,    │
//	│ (page 0..)      created, DS definitions, RRA definitions,    │
//	│                 crc32c — written once at Create              │
//	├──────────────────────────────────────────────────────────────┤
//	│ state slot A    seq · len · crc32c · mutable state: last     │
//	├─────────────────┤ update, PDP accumulators, per-RRA cursors  │
//	│ state slot B    (newest/filled/lastEnd/CDP accs/last-known)  │
//	├──────────────────────────────────────────────────────────────┤
//	│ RRA 0 rows      rows × data-sources × float64, a circular    │
//	├─────────────────┤ buffer updated in place; never-written     │
//	│ RRA 1 rows …    rows read as unknown (sparse file)           │
//	└──────────────────────────────────────────────────────────────┘
//
// Crash safety: an update writes its consolidated rows first, then the
// row-less state into the *alternate* slot (dual-slot, sequence-numbered,
// crc-guarded). A write torn by a crash leaves the other slot valid, and
// the state is what gives rows meaning — rows ahead of the recovered
// cursor are simply rewritten when the depot replays its WAL. Rows are
// written only at consolidation boundaries, so a reopened archive never
// serves a torn row: the recovered cursor cannot point past the last
// state write that followed it.
//
// Memory: an open archive holds only the row-less state (a few hundred
// bytes per data source), never the rings — Fetch and snapshot export
// read rows back with pread. RSS is bounded by how many archives are
// open, not by how many exist or how long their history is.
package file

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"inca/internal/rrd"
)

// Magic identifies a paged archive file (version byte separate).
const Magic = "INCARRDF"

const (
	formatVersion = 1
	pageSize      = 4096
	// slotHeaderLen is seq u64 + payload len u32 + crc32 u32.
	slotHeaderLen = 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// geometry locates every region of the file. It is fully determined by
// the static definitions, so Open recomputes it instead of trusting
// stored offsets.
type geometry struct {
	nds, nrra  int
	rowBytes   int64 // nds * 8
	stateOff   int64
	slotLen    int   // header + payload, unpadded
	slotStride int64 // page-aligned slot size
	ringOff    []int64
	size       int64
}

func pageAlign(n int64) int64 {
	if r := n % pageSize; r != 0 {
		return n + pageSize - r
	}
	return n
}

// statePayloadLen is the marshalled size of the mutable row-less state.
func statePayloadLen(nds, nrra int) int {
	// lastUpdate + updates, then per-DS lastRaw/pdpSum/pdpKnown.
	n := 16 + nds*24
	// Per RRA: newest, filled, pdpCount, lastEnd, then per-DS CDP
	// accumulator (6 words) and last-known value + time.
	n += nrra * (32 + nds*48 + nds*16)
	return n
}

func computeGeometry(staticLen int, nds int, rows []int) geometry {
	g := geometry{nds: nds, nrra: len(rows), rowBytes: int64(nds) * 8}
	g.stateOff = pageAlign(int64(staticLen))
	g.slotLen = slotHeaderLen + statePayloadLen(nds, len(rows))
	g.slotStride = pageAlign(int64(g.slotLen))
	off := g.stateOff + 2*g.slotStride
	g.ringOff = make([]int64, len(rows))
	for i, r := range rows {
		g.ringOff[i] = off
		off += pageAlign(int64(r) * g.rowBytes)
	}
	g.size = off
	return g
}

// fileRings adapts the ring regions to rrd.RingStore. It is called under
// the owning rrd.DB's lock, so the scratch buffer needs no locking.
type fileRings struct {
	f    *os.File
	geom *geometry
	buf  []byte
}

func (r *fileRings) WriteRow(rra, row int, values []float64) error {
	if rra < 0 || rra >= r.geom.nrra || len(values) != r.geom.nds {
		return fmt.Errorf("rrdfile: write row %d/%d arity", rra, row)
	}
	for i, v := range values {
		binary.BigEndian.PutUint64(r.buf[i*8:], math.Float64bits(v))
	}
	_, err := r.f.WriteAt(r.buf[:r.geom.rowBytes], r.geom.ringOff[rra]+int64(row)*r.geom.rowBytes)
	return err
}

func (r *fileRings) ReadRow(rra, row int, dst []float64) error {
	if rra < 0 || rra >= r.geom.nrra || len(dst) != r.geom.nds {
		return fmt.Errorf("rrdfile: read row %d/%d arity", rra, row)
	}
	if _, err := r.f.ReadAt(r.buf[:r.geom.rowBytes], r.geom.ringOff[rra]+int64(row)*r.geom.rowBytes); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(r.buf[i*8:]))
	}
	return nil
}

// DB is one disk-backed round-robin database. All methods are safe for
// concurrent use. The rows live only in the file; the row-less state is
// mirrored in memory and written through after every applied update.
type DB struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	db    *rrd.DB
	rings *fileRings
	geom  geometry
	seq   uint64
	buf   []byte // state marshal scratch, len == slotLen
}

// Create builds a new archive file at path. It fails if the file exists.
func Create(path string, start time.Time, step time.Duration, ds []rrd.DS, rras []rrd.RRA) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rrdfile: create: %w", err)
	}
	d, err := createOver(f, path, start, step, ds, rras)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return d, nil
}

// CreateFromPolicy is Create with the archive geometry a depot policy
// implies — exactly the layout rrd.NewFromPolicy builds in memory.
func CreateFromPolicy(path string, start time.Time, dsName string, p rrd.ArchivalPolicy) (*DB, error) {
	step, ds, rras, err := rrd.PolicyLayout(dsName, p)
	if err != nil {
		return nil, err
	}
	return Create(path, start, step, ds, rras)
}

func createOver(f *os.File, path string, start time.Time, step time.Duration, ds []rrd.DS, rras []rrd.RRA) (*DB, error) {
	hdr, err := marshalStaticHeader(step, start, ds, rras)
	if err != nil {
		return nil, err
	}
	rows := make([]int, len(rras))
	for i, r := range rras {
		rows[i] = r.Rows
	}
	d := &DB{f: f, path: path, geom: computeGeometry(len(hdr), len(ds), rows)}
	d.rings = &fileRings{f: f, geom: &d.geom, buf: make([]byte, d.geom.rowBytes)}
	d.buf = make([]byte, d.geom.slotLen)
	d.db, err = rrd.NewExternal(start, step, ds, rras, d.rings)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("rrdfile: write header: %w", err)
	}
	// Reserve the full extent sparsely: ring pages cost disk only once a
	// row lands on them.
	if err := f.Truncate(d.geom.size); err != nil {
		return nil, fmt.Errorf("rrdfile: reserve: %w", err)
	}
	if err := d.writeStateLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// Open loads an existing archive file. Only the static header and the
// newest valid state slot are read; rows stay on disk until fetched.
func Open(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("rrdfile: open: %w", err)
	}
	d, err := openOver(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func openOver(f *os.File, path string) (*DB, error) {
	step, created, ds, rras, staticLen, err := readStaticHeader(f)
	if err != nil {
		return nil, err
	}
	rows := make([]int, len(rras))
	for i, r := range rras {
		rows[i] = r.Rows
	}
	d := &DB{f: f, path: path, geom: computeGeometry(staticLen, len(ds), rows)}
	d.rings = &fileRings{f: f, geom: &d.geom, buf: make([]byte, d.geom.rowBytes)}
	d.buf = make([]byte, d.geom.slotLen)
	st, seq, err := d.readState(step, created, ds, rras)
	if err != nil {
		return nil, err
	}
	d.seq = seq
	d.db, err = rrd.NewFromState(st, d.rings)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Path returns the backing file path.
func (d *DB) Path() string { return d.path }

// Step returns the PDP step.
func (d *DB) Step() time.Duration { return d.db.Step() }

// DSNames returns the data source names in declaration order.
func (d *DB) DSNames() []string { return d.db.DSNames() }

// Last returns the time of the most recent update.
func (d *DB) Last() time.Time { return d.db.Last() }

// Updates returns the number of successful updates applied.
func (d *DB) Updates() uint64 { return d.db.Updates() }

// LastValue mirrors rrd.DB.LastValue.
func (d *DB) LastValue(cf rrd.CF) float64 { return d.db.LastValue(cf) }

// LastKnown mirrors rrd.DB.LastKnown.
func (d *DB) LastKnown(cf rrd.CF) (float64, time.Time) { return d.db.LastKnown(cf) }

// LastValueDS mirrors rrd.DB.LastValueDS.
func (d *DB) LastValueDS(cf rrd.CF, ds int) float64 { return d.db.LastValueDS(cf, ds) }

// Fetch mirrors rrd.DB.Fetch; rows are read back with pread.
func (d *DB) Fetch(cf rrd.CF, start, end time.Time) (*rrd.Series, error) {
	return d.db.Fetch(cf, start, end)
}

// Update applies one timestamped sample: consolidated rows are written in
// place (O(archives) pages), then the row-less state lands in the
// alternate slot.
func (d *DB) Update(t time.Time, values ...float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.db.Update(t, values...); err != nil {
		return err
	}
	return d.writeStateLocked()
}

// UpdateBatch applies a run of samples under one state write.
func (d *DB) UpdateBatch(samples []rrd.Sample) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.db.UpdateBatch(samples)
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, nil
	}
	return n, d.writeStateLocked()
}

// WriteTo serializes the archive as the standard in-memory image
// (rrd.ReadDB reads it back) — byte-identical to what the same update
// sequence against an in-memory DB would produce, which is what keeps
// depot snapshots interchangeable across storage backends.
func (d *DB) WriteTo(w io.Writer) (int64, error) {
	return d.db.WriteTo(w)
}

// Sync forces the file to stable storage (checkpoint barrier).
func (d *DB) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeStateLocked(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close flushes the state, forces the file to stable storage, and releases
// the handle. The fsync makes an eviction a durability point: once a
// depot's LRU closes an archive, a later checkpoint only has to sync the
// handles still open.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.writeStateLocked()
	if serr := d.f.Sync(); err == nil {
		err = serr
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeStateLocked marshals the row-less state into the alternate slot.
func (d *DB) writeStateLocked() error {
	st := d.db.State()
	seq := d.seq + 1
	buf := d.buf
	binary.BigEndian.PutUint64(buf[0:], seq)
	payload := marshalState(buf[slotHeaderLen:slotHeaderLen], st)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[12:], crc32.Checksum(payload, crcTable))
	off := d.geom.stateOff + int64(seq%2)*d.geom.slotStride
	if _, err := d.f.WriteAt(buf[:slotHeaderLen+len(payload)], off); err != nil {
		return fmt.Errorf("rrdfile: write state: %w", err)
	}
	d.seq = seq
	return nil
}

// readState loads both slots and restores the newest valid one.
func (d *DB) readState(step time.Duration, created time.Time, ds []rrd.DS, rras []rrd.RRA) (rrd.DBState, uint64, error) {
	var best []byte
	var bestSeq uint64
	found := false
	for slot := 0; slot < 2; slot++ {
		buf := make([]byte, d.geom.slotLen)
		if _, err := d.f.ReadAt(buf, d.geom.stateOff+int64(slot)*d.geom.slotStride); err != nil {
			continue
		}
		seq := binary.BigEndian.Uint64(buf[0:])
		plen := binary.BigEndian.Uint32(buf[8:])
		crc := binary.BigEndian.Uint32(buf[12:])
		if int(plen) != d.geom.slotLen-slotHeaderLen {
			continue
		}
		payload := buf[slotHeaderLen : slotHeaderLen+int(plen)]
		if crc32.Checksum(payload, crcTable) != crc {
			continue
		}
		if seq%2 != uint64(slot) {
			continue
		}
		if !found || seq > bestSeq {
			best, bestSeq, found = payload, seq, true
		}
	}
	if !found {
		return rrd.DBState{}, 0, fmt.Errorf("rrdfile: %s: no valid state slot", d.path)
	}
	st, err := unmarshalState(best, step, created, ds, rras)
	return st, bestSeq, err
}

// --- static header ---

func marshalStaticHeader(step time.Duration, created time.Time, ds []rrd.DS, rras []rrd.RRA) ([]byte, error) {
	if len(ds) == 0 || len(rras) == 0 {
		return nil, fmt.Errorf("rrdfile: empty definitions")
	}
	var buf []byte
	buf = append(buf, Magic...)
	buf = binary.BigEndian.AppendUint32(buf, formatVersion)
	buf = binary.BigEndian.AppendUint32(buf, pageSize)
	buf = binary.BigEndian.AppendUint64(buf, uint64(step))
	buf = binary.BigEndian.AppendUint64(buf, uint64(created.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ds)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rras)))
	for _, d := range ds {
		if len(d.Name) > 255 {
			return nil, fmt.Errorf("rrdfile: data source name %q too long", d.Name)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Name)))
		buf = append(buf, d.Name...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(d.Type))
		buf = binary.BigEndian.AppendUint64(buf, uint64(d.Heartbeat))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Min))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Max))
	}
	for _, r := range rras {
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.CF))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.XFF))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Steps))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Rows))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	if len(buf) > pageSize {
		// The header region may span pages for very wide databases; the
		// geometry page-aligns the state region after it either way.
		_ = buf
	}
	return buf, nil
}

// staticReader is a bounds-checked big-endian cursor.
type staticReader struct {
	buf []byte
	off int
	err error
}

func (r *staticReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *staticReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *staticReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *staticReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *staticReader) f64() float64 { return math.Float64frombits(r.u64()) }

func readStaticHeader(f *os.File) (time.Duration, time.Time, []rrd.DS, []rrd.RRA, int, error) {
	fail := func(err error) (time.Duration, time.Time, []rrd.DS, []rrd.RRA, int, error) {
		return 0, time.Time{}, nil, nil, 0, err
	}
	// The header is rarely longer than a page; read generously and trim.
	raw := make([]byte, 4*pageSize)
	n, err := f.ReadAt(raw, 0)
	if err != nil && err != io.EOF {
		return fail(fmt.Errorf("rrdfile: read header: %w", err))
	}
	raw = raw[:n]
	if len(raw) < len(Magic) || string(raw[:len(Magic)]) != Magic {
		return fail(fmt.Errorf("rrdfile: bad magic"))
	}
	r := &staticReader{buf: raw, off: len(Magic)}
	version := r.u32()
	page := r.u32()
	step := time.Duration(r.u64())
	created := time.Unix(0, int64(r.u64())).UTC()
	nds := int(r.u32())
	nrra := int(r.u32())
	if r.err != nil {
		return fail(fmt.Errorf("rrdfile: truncated header"))
	}
	if version != formatVersion {
		return fail(fmt.Errorf("rrdfile: unsupported version %d", version))
	}
	if page != pageSize {
		return fail(fmt.Errorf("rrdfile: page size %d, want %d", page, pageSize))
	}
	if nds <= 0 || nds > 1<<12 || nrra <= 0 || nrra > 1<<12 {
		return fail(fmt.Errorf("rrdfile: implausible arity %d×%d", nds, nrra))
	}
	ds := make([]rrd.DS, nds)
	for i := range ds {
		nameLen := int(r.u16())
		ds[i].Name = string(r.bytes(nameLen))
		ds[i].Type = rrd.DSType(r.u32())
		ds[i].Heartbeat = time.Duration(r.u64())
		ds[i].Min = r.f64()
		ds[i].Max = r.f64()
	}
	rras := make([]rrd.RRA, nrra)
	for i := range rras {
		rras[i].CF = rrd.CF(r.u32())
		rras[i].XFF = r.f64()
		rras[i].Steps = int(r.u32())
		rras[i].Rows = int(r.u32())
		if r.err == nil && (rras[i].Rows <= 0 || rras[i].Rows > 1<<28 || rras[i].Steps <= 0) {
			return fail(fmt.Errorf("rrdfile: implausible archive geometry %d×%d", rras[i].Steps, rras[i].Rows))
		}
	}
	bodyEnd := r.off
	crc := r.u32()
	if r.err != nil {
		return fail(fmt.Errorf("rrdfile: truncated header"))
	}
	if crc32.Checksum(raw[:bodyEnd], crcTable) != crc {
		return fail(fmt.Errorf("rrdfile: header checksum mismatch"))
	}
	return step, created, ds, rras, r.off, nil
}

// --- mutable state payload ---

func marshalState(dst []byte, st rrd.DBState) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.LastUpdate.UnixNano()))
	dst = binary.BigEndian.AppendUint64(dst, st.Updates)
	for i := range st.DS {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(st.LastRaw[i]))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(st.PDPSum[i]))
		dst = binary.BigEndian.AppendUint64(dst, uint64(st.PDPKnown[i]))
	}
	for _, r := range st.RRAs {
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(r.Newest)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(r.Filled)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(r.PDPCount)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.LastEnd.UnixNano()))
		for _, a := range r.Acc {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Sum))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Min))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Max))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Last))
			dst = binary.BigEndian.AppendUint64(dst, uint64(int64(a.Known)))
			dst = binary.BigEndian.AppendUint64(dst, uint64(int64(a.Unknown)))
		}
		for i := range r.LastKnown {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.LastKnown[i]))
			dst = binary.BigEndian.AppendUint64(dst, uint64(r.LastKnownAt[i].UnixNano()))
		}
	}
	return dst
}

func unmarshalState(payload []byte, step time.Duration, created time.Time, ds []rrd.DS, rras []rrd.RRA) (rrd.DBState, error) {
	r := &staticReader{buf: payload}
	st := rrd.DBState{
		Step:    step,
		Created: created,
		DS:      ds,
	}
	st.LastUpdate = time.Unix(0, int64(r.u64())).UTC()
	st.Updates = r.u64()
	st.LastRaw = make([]float64, len(ds))
	st.PDPSum = make([]float64, len(ds))
	st.PDPKnown = make([]time.Duration, len(ds))
	for i := range ds {
		st.LastRaw[i] = r.f64()
		st.PDPSum[i] = r.f64()
		st.PDPKnown[i] = time.Duration(r.u64())
	}
	st.RRAs = make([]rrd.RRAState, len(rras))
	for i, def := range rras {
		rs := &st.RRAs[i]
		rs.Def = def
		rs.Newest = int(int64(r.u64()))
		rs.Filled = int(int64(r.u64()))
		rs.PDPCount = int(int64(r.u64()))
		rs.LastEnd = time.Unix(0, int64(r.u64())).UTC()
		rs.Acc = make([]rrd.CDPAcc, len(ds))
		for j := range rs.Acc {
			rs.Acc[j].Sum = r.f64()
			rs.Acc[j].Min = r.f64()
			rs.Acc[j].Max = r.f64()
			rs.Acc[j].Last = r.f64()
			rs.Acc[j].Known = int(int64(r.u64()))
			rs.Acc[j].Unknown = int(int64(r.u64()))
		}
		rs.LastKnown = make([]float64, len(ds))
		rs.LastKnownAt = make([]time.Time, len(ds))
		for j := range ds {
			rs.LastKnown[j] = r.f64()
			rs.LastKnownAt[j] = time.Unix(0, int64(r.u64())).UTC()
		}
	}
	if r.err != nil {
		return rrd.DBState{}, fmt.Errorf("rrdfile: truncated state payload")
	}
	return st, nil
}
