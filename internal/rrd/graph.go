package rrd

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// GraphOptions controls ASCII rendering of a fetched series.
type GraphOptions struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
	// Title is printed above the plot.
	Title string
	// YLabel names the value axis (e.g. "Mbps", "% available").
	YLabel string
	// YMin/YMax fix the value range; leave both zero to auto-scale.
	YMin, YMax float64
	// TimeFormat formats the x-axis tick labels (default "Mon 15:04").
	TimeFormat string
}

// Graph renders one data source of a series as a horizontal-time ASCII plot
// — this reproduction's stand-in for the paper's Figure 5/6 graphs, which
// TeraGrid produced with RRDTool's PNG grapher.
func Graph(s *Series, ds string, opt GraphOptions) (string, error) {
	vals, err := s.Values(ds)
	if err != nil {
		return "", err
	}
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	if opt.TimeFormat == "" {
		opt.TimeFormat = "Mon 15:04"
	}
	lo, hi := opt.YMin, opt.YMax
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) { // all unknown
			lo, hi = 0, 1
		}
		if lo == hi {
			hi = lo + 1
		}
		// Pad 5% so extremes don't sit on the frame.
		pad := (hi - lo) * 0.05
		lo -= pad
		hi += pad
	}

	grid := make([][]byte, opt.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opt.Width))
	}
	n := len(vals)
	for col := 0; col < opt.Width; col++ {
		// Average the samples mapping to this column.
		loIdx := col * n / opt.Width
		hiIdx := (col + 1) * n / opt.Width
		if hiIdx <= loIdx {
			hiIdx = loIdx + 1
		}
		sum, known := 0.0, 0
		for i := loIdx; i < hiIdx && i < n; i++ {
			if !math.IsNaN(vals[i]) {
				sum += vals[i]
				known++
			}
		}
		if known == 0 {
			continue
		}
		v := sum / float64(known)
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		row := opt.Height - 1 - int(frac*float64(opt.Height-1)+0.5)
		grid[row][col] = '*'
	}

	var sb strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opt.Title)
	}
	for i, rowBytes := range grid {
		// Label top, middle, bottom rows with values.
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%10.2f", hi)
		case opt.Height / 2:
			label = fmt.Sprintf("%10.2f", (hi+lo)/2)
		case opt.Height - 1:
			label = fmt.Sprintf("%10.2f", lo)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, rowBytes)
	}
	fmt.Fprintf(&sb, "%s +%s+\n", strings.Repeat(" ", 10), strings.Repeat("-", opt.Width))
	if len(s.Points) > 0 {
		first := s.Points[0].Time.Format(opt.TimeFormat)
		last := s.Points[len(s.Points)-1].Time.Format(opt.TimeFormat)
		gap := opt.Width - len(first) - len(last)
		if gap < 1 {
			gap = 1
		}
		fmt.Fprintf(&sb, "%s  %s%s%s\n", strings.Repeat(" ", 10), first, strings.Repeat(" ", gap), last)
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&sb, "%s  y: %s, resolution %v, CF %s\n", strings.Repeat(" ", 10), opt.YLabel, s.Resolution, s.CF)
	}
	return sb.String(), nil
}

// SparkLine renders the series as a single-line sparkline (block glyphs),
// handy for compact status pages.
func SparkLine(vals []float64) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat("·", len(vals))
	}
	if lo == hi {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			sb.WriteRune('·')
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

// ArchivalPolicy is the depot-facing description of how to archive one
// numeric datum (paper Section 3.2.2: "the granularity of archiving (e.g.,
// every fifth measurement) and the length of history to keep").
type ArchivalPolicy struct {
	// Step is the expected measurement period.
	Step time.Duration
	// Granularity archives every Nth measurement (1 = every measurement).
	Granularity int
	// History is how far back to keep data.
	History time.Duration
	// Heartbeat marks data unknown after this silence (default 2*Step).
	Heartbeat time.Duration
	// CFs lists the consolidation functions to maintain (default AVERAGE).
	CFs []CF
}

// PolicyLayout expands an archival policy into the concrete database
// layout NewFromPolicy builds — exported so alternative storage engines
// (the paged on-disk format in rrd/file) create archives with exactly the
// geometry the in-memory path would.
func PolicyLayout(dsName string, p ArchivalPolicy) (time.Duration, []DS, []RRA, error) {
	if p.Step <= 0 {
		return 0, nil, nil, fmt.Errorf("rrd: policy step must be positive")
	}
	if p.Granularity <= 0 {
		p.Granularity = 1
	}
	if p.History <= 0 {
		return 0, nil, nil, fmt.Errorf("rrd: policy history must be positive")
	}
	hb := p.Heartbeat
	if hb <= 0 {
		hb = 2 * p.Step
	}
	cfs := p.CFs
	if len(cfs) == 0 {
		cfs = []CF{Average}
	}
	rowDur := p.Step * time.Duration(p.Granularity)
	rows := int(p.History / rowDur)
	if rows < 1 {
		rows = 1
	}
	var rras []RRA
	for _, cf := range cfs {
		rras = append(rras, RRA{CF: cf, XFF: 0.5, Steps: p.Granularity, Rows: rows})
	}
	ds := []DS{{Name: dsName, Type: Gauge, Heartbeat: hb, Min: math.NaN(), Max: math.NaN()}}
	return p.Step, ds, rras, nil
}

// NewFromPolicy builds a single-source DB implementing the policy.
func NewFromPolicy(start time.Time, dsName string, p ArchivalPolicy) (*DB, error) {
	step, ds, rras, err := PolicyLayout(dsName, p)
	if err != nil {
		return nil, err
	}
	return New(start, step, ds, rras)
}
