package rrd

import (
	"fmt"
	"time"
)

// The exported state snapshot behind the paged on-disk format (rrd/file):
// everything a DB holds in memory *except* the consolidated rows, which an
// external RingStore owns. A disk-backed archive persists this state in a
// fixed header region and restores through NewFromState, so the rows — the
// bulk of an archive — never have to be rewritten or reloaded wholesale.

// CDPAcc is one data source's in-progress consolidation accumulator.
type CDPAcc struct {
	Sum, Min, Max, Last float64
	Known, Unknown      int
}

// RRAState is one archive's definition plus its mutable consolidation
// cursor — but not its rows.
type RRAState struct {
	Def         RRA
	Newest      int // index of the most recently written row; -1 when empty
	Filled      int
	PDPCount    int
	LastEnd     time.Time
	Acc         []CDPAcc
	LastKnown   []float64
	LastKnownAt []time.Time
}

// DBState is the complete row-less state of a database.
type DBState struct {
	Step       time.Duration
	Created    time.Time
	LastUpdate time.Time
	Updates    uint64
	DS         []DS
	LastRaw    []float64
	PDPSum     []float64
	PDPKnown   []time.Duration
	RRAs       []RRAState
}

// State returns a deep copy of the database's row-less state.
func (db *DB) State() DBState {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := DBState{
		Step:       db.step,
		Created:    db.created,
		LastUpdate: db.lastUpdate,
		Updates:    db.updates,
		DS:         append([]DS(nil), db.ds...),
		LastRaw:    append([]float64(nil), db.lastRaw...),
		PDPSum:     append([]float64(nil), db.pdpSum...),
		PDPKnown:   append([]time.Duration(nil), db.pdpKnown...),
	}
	st.RRAs = make([]RRAState, len(db.rras))
	for i, r := range db.rras {
		st.RRAs[i] = RRAState{
			Def:         r.def,
			Newest:      r.newest,
			Filled:      r.filled,
			PDPCount:    r.pdpCount,
			LastEnd:     r.lastEnd,
			LastKnown:   append([]float64(nil), r.lastKnown...),
			LastKnownAt: append([]time.Time(nil), r.lastKnownAt...),
		}
		st.RRAs[i].Acc = make([]CDPAcc, len(r.acc))
		for j, a := range r.acc {
			st.RRAs[i].Acc[j] = CDPAcc{
				Sum: a.sum, Min: a.min, Max: a.max, Last: a.last,
				Known: a.known, Unknown: a.unknown,
			}
		}
	}
	return st
}

// NewFromState reconstructs a database over an external RingStore from a
// state snapshot — the open path of a disk-backed archive, whose rows are
// already in place behind the store.
func NewFromState(st DBState, rings RingStore) (*DB, error) {
	if rings == nil {
		return nil, fmt.Errorf("rrd: NewFromState requires a ring store (in-memory restore goes through ReadDB)")
	}
	if st.Step <= 0 {
		return nil, fmt.Errorf("rrd: state has non-positive step %v", st.Step)
	}
	nds := len(st.DS)
	if nds == 0 || len(st.LastRaw) != nds || len(st.PDPSum) != nds || len(st.PDPKnown) != nds {
		return nil, fmt.Errorf("rrd: state data source arity mismatch")
	}
	if len(st.RRAs) == 0 {
		return nil, fmt.Errorf("rrd: state has no archives")
	}
	db := &DB{
		step:       st.Step,
		ds:         append([]DS(nil), st.DS...),
		rings:      rings,
		created:    st.Created,
		lastUpdate: st.LastUpdate,
		updates:    st.Updates,
		lastRaw:    append([]float64(nil), st.LastRaw...),
		pdpSum:     append([]float64(nil), st.PDPSum...),
		pdpKnown:   append([]time.Duration(nil), st.PDPKnown...),
	}
	for i, rs := range st.RRAs {
		if rs.Def.Rows <= 0 || rs.Def.Steps <= 0 {
			return nil, fmt.Errorf("rrd: state archive %d has non-positive geometry", i)
		}
		if len(rs.Acc) != nds || len(rs.LastKnown) != nds || len(rs.LastKnownAt) != nds {
			return nil, fmt.Errorf("rrd: state archive %d arity mismatch", i)
		}
		if rs.Newest < -1 || rs.Newest >= rs.Def.Rows || rs.Filled < 0 || rs.Filled > rs.Def.Rows {
			return nil, fmt.Errorf("rrd: state archive %d cursor out of range", i)
		}
		r := &rraState{
			def:         rs.Def,
			newest:      rs.Newest,
			filled:      rs.Filled,
			pdpCount:    rs.PDPCount,
			lastEnd:     rs.LastEnd,
			lastKnown:   append([]float64(nil), rs.LastKnown...),
			lastKnownAt: append([]time.Time(nil), rs.LastKnownAt...),
		}
		r.acc = make([]cdpAcc, nds)
		for j, a := range rs.Acc {
			r.acc[j] = cdpAcc{
				sum: a.Sum, min: a.Min, max: a.Max, last: a.Last,
				known: a.Known, unknown: a.Unknown,
			}
		}
		db.rras = append(db.rras, r)
	}
	return db, nil
}
