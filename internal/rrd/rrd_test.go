package rrd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func gaugeDS(name string) DS {
	return DS{Name: name, Type: Gauge, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()}
}

func newGaugeDB(t *testing.T, step time.Duration, rras ...RRA) *DB {
	t.Helper()
	if len(rras) == 0 {
		rras = []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 100}}
	}
	db, err := New(t0, step, []DS{gaugeDS("v")}, rras)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	ds := []DS{gaugeDS("v")}
	rra := []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}}
	cases := []struct {
		name string
		fn   func() (*DB, error)
	}{
		{"zero step", func() (*DB, error) { return New(t0, 0, ds, rra) }},
		{"no ds", func() (*DB, error) { return New(t0, time.Minute, nil, rra) }},
		{"no rra", func() (*DB, error) { return New(t0, time.Minute, ds, nil) }},
		{"unnamed ds", func() (*DB, error) {
			return New(t0, time.Minute, []DS{{Type: Gauge, Heartbeat: time.Minute}}, rra)
		}},
		{"dup ds", func() (*DB, error) { return New(t0, time.Minute, []DS{gaugeDS("v"), gaugeDS("v")}, rra) }},
		{"no heartbeat", func() (*DB, error) {
			return New(t0, time.Minute, []DS{{Name: "v", Type: Gauge}}, rra)
		}},
		{"bad xff", func() (*DB, error) {
			return New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 1.0, Steps: 1, Rows: 10}})
		}},
		{"zero rows", func() (*DB, error) {
			return New(t0, time.Minute, ds, []RRA{{CF: Average, Steps: 1}})
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestUpdateMonotonicity(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	if err := db.Update(t0.Add(time.Minute), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(t0.Add(time.Minute), 2); err == nil {
		t.Fatal("same-instant update accepted")
	}
	if err := db.Update(t0, 2); err == nil {
		t.Fatal("backwards update accepted")
	}
	if err := db.Update(t0.Add(2*time.Minute), 1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if db.Updates() != 1 {
		t.Fatalf("Updates = %d", db.Updates())
	}
}

func TestGaugeAverageExact(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	// Constant value 5 sampled exactly on step boundaries.
	for i := 1; i <= 10; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*time.Minute), 5); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.Fetch(Average, t0, t0.Add(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 10 {
		t.Fatalf("points = %d, want 10", len(s.Points))
	}
	for _, p := range s.Points {
		if math.Abs(p.Values[0]-5) > 1e-9 {
			t.Fatalf("point %v = %g, want 5", p.Time, p.Values[0])
		}
	}
}

func TestGaugeTimeWeightedWithinStep(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	// Value 0 for the first 30 s of the window, 10 for the last 30 s →
	// average 5 for the PDP ending at t0+1m.
	if err := db.Update(t0.Add(30*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(t0.Add(60*time.Second), 10); err != nil {
		t.Fatal(err)
	}
	s, err := db.Fetch(Average, t0, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if got := s.Points[0].Values[0]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("PDP = %g, want 5", got)
	}
}

func TestCounterRate(t *testing.T) {
	ds := []DS{{Name: "pkts", Type: Counter, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()}}
	db, err := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// First update establishes the baseline (rate unknown), then +600 per
	// minute → 10/s.
	if err := db.Update(t0.Add(time.Minute), 1000); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(t0.Add(2*time.Minute), 1600); err != nil {
		t.Fatal(err)
	}
	s, err := db.Fetch(Average, t0, t0.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	last := s.Points[len(s.Points)-1]
	if math.Abs(last.Values[0]-10) > 1e-9 {
		t.Fatalf("counter rate = %g, want 10", last.Values[0])
	}
	// First PDP must be unknown (no baseline).
	if !math.IsNaN(s.Points[0].Values[0]) {
		t.Fatalf("first counter PDP = %g, want NaN", s.Points[0].Values[0])
	}
}

func TestCounterResetYieldsUnknown(t *testing.T) {
	ds := []DS{{Name: "c", Type: Counter, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()}}
	db, _ := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Update(t0.Add(1*time.Minute), 500))
	must(db.Update(t0.Add(2*time.Minute), 100)) // reset
	s, _ := db.Fetch(Average, t0.Add(90*time.Second), t0.Add(2*time.Minute))
	if !math.IsNaN(s.Points[len(s.Points)-1].Values[0]) {
		t.Fatal("counter reset did not yield unknown")
	}
}

func TestDeriveAllowsNegative(t *testing.T) {
	ds := []DS{{Name: "d", Type: Derive, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()}}
	db, _ := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := db.Update(t0.Add(1*time.Minute), 600); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(t0.Add(2*time.Minute), 0); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0.Add(90*time.Second), t0.Add(2*time.Minute))
	if got := s.Points[len(s.Points)-1].Values[0]; math.Abs(got-(-10)) > 1e-9 {
		t.Fatalf("derive rate = %g, want -10", got)
	}
}

func TestAbsolute(t *testing.T) {
	ds := []DS{{Name: "a", Type: Absolute, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()}}
	db, _ := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := db.Update(t0.Add(time.Minute), 600); err != nil { // 600 events in 60 s
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0, t0.Add(time.Minute))
	if got := s.Points[0].Values[0]; math.Abs(got-10) > 1e-9 {
		t.Fatalf("absolute rate = %g, want 10", got)
	}
}

func TestHeartbeatMarksGapUnknown(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	if err := db.Update(t0.Add(time.Minute), 5); err != nil {
		t.Fatal(err)
	}
	// 30-minute silence exceeds the 10-minute heartbeat.
	if err := db.Update(t0.Add(31*time.Minute), 5); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0.Add(2*time.Minute), t0.Add(31*time.Minute))
	nan := 0
	for _, p := range s.Points {
		if math.IsNaN(p.Values[0]) {
			nan++
		}
	}
	if nan != len(s.Points) {
		t.Fatalf("%d of %d gap points unknown; want all", nan, len(s.Points))
	}
}

func TestMinMaxClamp(t *testing.T) {
	ds := []DS{{Name: "pct", Type: Gauge, Heartbeat: 10 * time.Minute, Min: 0, Max: 100}}
	db, _ := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := db.Update(t0.Add(time.Minute), 150); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0, t0.Add(time.Minute))
	if !math.IsNaN(s.Points[0].Values[0]) {
		t.Fatal("out-of-range gauge value not marked unknown")
	}
}

func TestConsolidationFunctions(t *testing.T) {
	rras := []RRA{
		{CF: Average, XFF: 0.5, Steps: 5, Rows: 10},
		{CF: Min, XFF: 0.5, Steps: 5, Rows: 10},
		{CF: Max, XFF: 0.5, Steps: 5, Rows: 10},
		{CF: Last, XFF: 0.5, Steps: 5, Rows: 10},
	}
	db := newGaugeDB(t, time.Minute, rras...)
	vals := []float64{1, 9, 3, 7, 5}
	for i, v := range vals {
		if err := db.Update(t0.Add(time.Duration(i+1)*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	end := t0.Add(5 * time.Minute)
	check := func(cf CF, want float64) {
		s, err := db.Fetch(cf, t0, end)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Points) != 1 {
			t.Fatalf("%s: points = %d", cf, len(s.Points))
		}
		if got := s.Points[0].Values[0]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s = %g, want %g", cf, got, want)
		}
	}
	check(Average, 5)
	check(Min, 1)
	check(Max, 9)
	check(Last, 5)
}

func TestXFFThreshold(t *testing.T) {
	// 5-step consolidation, xff 0.5: 2 unknown of 5 is fine, 3 is not.
	rra := RRA{CF: Average, XFF: 0.5, Steps: 5, Rows: 10}
	ds := []DS{{Name: "v", Type: Gauge, Heartbeat: 90 * time.Second, Min: math.NaN(), Max: math.NaN()}}

	run := func(updateMinutes []int) float64 {
		db, err := New(t0, time.Minute, ds, []RRA{rra})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for _, m := range updateMinutes {
			// Hop in 1-minute updates; skipped minutes exceed nothing (the
			// heartbeat is 90 s), so emulate unknowns with explicit NaN.
			for i := prev + 1; i <= m; i++ {
				v := 4.0
				if err := db.Update(t0.Add(time.Duration(i)*time.Minute), v); err != nil {
					t.Fatal(err)
				}
			}
			prev = m
		}
		s, _ := db.Fetch(Average, t0, t0.Add(5*time.Minute))
		if len(s.Points) == 0 {
			t.Fatal("no consolidated point")
		}
		return s.Points[0].Values[0]
	}
	// All five known.
	if v := run([]int{5}); math.Abs(v-4) > 1e-9 {
		t.Fatalf("full window = %g", v)
	}

	// Now with NaN injections: 3 unknown of 5 → NaN.
	db, _ := New(t0, time.Minute, ds, []RRA{rra})
	seq := []float64{4, math.NaN(), math.NaN(), math.NaN(), 4}
	for i, v := range seq {
		if err := db.Update(t0.Add(time.Duration(i+1)*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := db.Fetch(Average, t0, t0.Add(5*time.Minute))
	if !math.IsNaN(s.Points[0].Values[0]) {
		t.Fatalf("3/5 unknown consolidated to %g, want NaN", s.Points[0].Values[0])
	}

	// 2 unknown of 5 → known average of the 3 known points.
	db, _ = New(t0, time.Minute, ds, []RRA{rra})
	seq = []float64{4, math.NaN(), 6, math.NaN(), 5}
	for i, v := range seq {
		if err := db.Update(t0.Add(time.Duration(i+1)*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	s, _ = db.Fetch(Average, t0, t0.Add(5*time.Minute))
	if got := s.Points[0].Values[0]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("2/5 unknown average = %g, want 5", got)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	db := newGaugeDB(t, time.Minute, RRA{CF: Average, XFF: 0.5, Steps: 1, Rows: 5})
	for i := 1; i <= 12; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := db.Fetch(Average, t0, t0.Add(12*time.Minute))
	if len(s.Points) != 5 {
		t.Fatalf("points = %d, want 5 (ring capacity)", len(s.Points))
	}
	// The surviving rows are the newest five PDPs: minutes 8..12.
	for i, p := range s.Points {
		want := float64(8 + i)
		if math.Abs(p.Values[0]-want) > 1e-9 {
			t.Fatalf("point %d = %g, want %g", i, p.Values[0], want)
		}
		if !p.Time.Equal(t0.Add(time.Duration(8+i) * time.Minute)) {
			t.Fatalf("point %d time = %v", i, p.Time)
		}
	}
}

func TestFetchSelectsFinestCoveringRRA(t *testing.T) {
	db := newGaugeDB(t, time.Minute,
		RRA{CF: Average, XFF: 0.5, Steps: 1, Rows: 10},  // 10 min retention
		RRA{CF: Average, XFF: 0.5, Steps: 10, Rows: 50}, // 500 min retention
	)
	for i := 1; i <= 120; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*time.Minute), float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Recent range → fine archive.
	s, _ := db.Fetch(Average, t0.Add(115*time.Minute), t0.Add(120*time.Minute))
	if s.Resolution != time.Minute {
		t.Fatalf("recent fetch resolution = %v, want 1m", s.Resolution)
	}
	// Old range → coarse archive.
	s, _ = db.Fetch(Average, t0.Add(10*time.Minute), t0.Add(120*time.Minute))
	if s.Resolution != 10*time.Minute {
		t.Fatalf("old fetch resolution = %v, want 10m", s.Resolution)
	}
}

func TestFetchErrors(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	if _, err := db.Fetch(Max, t0, t0.Add(time.Hour)); err == nil {
		t.Fatal("fetch with absent CF accepted")
	}
	if _, err := db.Fetch(Average, t0.Add(time.Hour), t0); err == nil {
		t.Fatal("inverted range accepted")
	}
	s, err := db.Fetch(Average, t0, t0.Add(time.Hour))
	if err != nil || len(s.Points) != 0 {
		t.Fatalf("empty db fetch = %v, %d points", err, len(s.Points))
	}
}

func TestSeriesValues(t *testing.T) {
	db := newGaugeDB(t, time.Minute)
	if err := db.Update(t0.Add(time.Minute), 42); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0, t0.Add(time.Minute))
	vals, err := s.Values("v")
	if err != nil || len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("Values = %v, %v", vals, err)
	}
	if _, err := s.Values("ghost"); err == nil {
		t.Fatal("unknown DS accepted")
	}
}

func TestAverageConservationProperty(t *testing.T) {
	// For boundary-aligned gauge updates, the mean of all consolidated
	// points equals the mean of the inputs (no loss in consolidation).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(30)
		db, err := New(t0, time.Minute, []DS{gaugeDS("v")},
			[]RRA{{CF: Average, XFF: 0, Steps: 1, Rows: 100}})
		if err != nil {
			return false
		}
		var sum float64
		for i := 1; i <= n; i++ {
			v := r.Float64() * 100
			sum += v
			if err := db.Update(t0.Add(time.Duration(i)*time.Minute), v); err != nil {
				return false
			}
		}
		s, err := db.Fetch(Average, t0, t0.Add(time.Duration(n)*time.Minute))
		if err != nil || len(s.Points) != n {
			return false
		}
		var got float64
		for _, p := range s.Points {
			got += p.Values[0]
		}
		return math.Abs(got-sum) < 1e-6*math.Max(1, math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLEAvgLEMaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rras := []RRA{
			{CF: Average, XFF: 0, Steps: 5, Rows: 50},
			{CF: Min, XFF: 0, Steps: 5, Rows: 50},
			{CF: Max, XFF: 0, Steps: 5, Rows: 50},
		}
		db, err := New(t0, time.Minute, []DS{gaugeDS("v")}, rras)
		if err != nil {
			return false
		}
		n := 25 + r.Intn(50)
		for i := 1; i <= n; i++ {
			if err := db.Update(t0.Add(time.Duration(i)*time.Minute), r.Float64()*50); err != nil {
				return false
			}
		}
		end := t0.Add(time.Duration(n) * time.Minute)
		avg, _ := db.Fetch(Average, t0, end)
		mn, _ := db.Fetch(Min, t0, end)
		mx, _ := db.Fetch(Max, t0, end)
		if len(avg.Points) != len(mn.Points) || len(avg.Points) != len(mx.Points) {
			return false
		}
		for i := range avg.Points {
			a, lo, hi := avg.Points[i].Values[0], mn.Points[i].Values[0], mx.Points[i].Values[0]
			if math.IsNaN(a) || math.IsNaN(lo) || math.IsNaN(hi) {
				continue
			}
			if lo > a+1e-9 || a > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromPolicy(t *testing.T) {
	p := ArchivalPolicy{Step: 10 * time.Minute, Granularity: 5, History: 24 * time.Hour}
	db, err := NewFromPolicy(t0, "availability", p)
	if err != nil {
		t.Fatal(err)
	}
	if db.Step() != 10*time.Minute {
		t.Fatalf("step = %v", db.Step())
	}
	// Rows: 24h / (10m*5) ≈ 28.
	for i := 1; i <= 60; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*10*time.Minute), 100); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.Fetch(Average, t0, t0.Add(10*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if s.Resolution != 50*time.Minute {
		t.Fatalf("resolution = %v, want 50m", s.Resolution)
	}
	if len(s.Points) == 0 {
		t.Fatal("no points archived")
	}
}

func TestNewFromPolicyValidation(t *testing.T) {
	if _, err := NewFromPolicy(t0, "x", ArchivalPolicy{Granularity: 1, History: time.Hour}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := NewFromPolicy(t0, "x", ArchivalPolicy{Step: time.Minute}); err == nil {
		t.Fatal("zero history accepted")
	}
	// Defaults fill in granularity, heartbeat, CFs.
	db, err := NewFromPolicy(t0, "x", ArchivalPolicy{Step: time.Minute, History: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if db == nil {
		t.Fatal("nil db")
	}
}

func TestCFAndDSTypeStrings(t *testing.T) {
	if Average.String() != "AVERAGE" || Min.String() != "MIN" || Max.String() != "MAX" || Last.String() != "LAST" {
		t.Fatal("CF names wrong")
	}
	if CF(99).String() == "" || DSType(99).String() == "" {
		t.Fatal("unknown enum renders empty")
	}
	if Gauge.String() != "GAUGE" || Counter.String() != "COUNTER" || Derive.String() != "DERIVE" || Absolute.String() != "ABSOLUTE" {
		t.Fatal("DSType names wrong")
	}
}

func TestMultiDSIndependentUnknowns(t *testing.T) {
	ds := []DS{gaugeDS("a"), gaugeDS("b")}
	db, err := New(t0, time.Minute, ds, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(t0.Add(time.Minute), math.NaN(), 7); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Fetch(Average, t0, t0.Add(time.Minute))
	if !math.IsNaN(s.Points[0].Values[0]) {
		t.Fatal("NaN input did not stay unknown for DS a")
	}
	if got := s.Points[0].Values[1]; math.Abs(got-7) > 1e-9 {
		t.Fatalf("DS b = %g, want 7", got)
	}
}

func TestUpdateBatchMatchesSerialUpdates(t *testing.T) {
	pol := ArchivalPolicy{Step: 10 * time.Minute, Granularity: 3, History: 24 * time.Hour}
	serial, err := NewFromPolicy(t0, "v", pol)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewFromPolicy(t0, "v", pol)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for i := 1; i <= 60; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		v := float64(i % 17)
		samples = append(samples, Sample{Time: at, Value: v})
		if err := serial.Update(at, v); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave an out-of-order duplicate: dropped, not fatal.
	samples = append(samples, Sample{Time: t0, Value: 99})
	applied, err := batched.UpdateBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 60 {
		t.Fatalf("applied = %d, want 60", applied)
	}
	ss, err := serial.Fetch(Average, t0, t0.Add(11*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	bs, err := batched.Fetch(Average, t0, t0.Add(11*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Points) == 0 || len(ss.Points) != len(bs.Points) {
		t.Fatalf("points: serial %d, batched %d", len(ss.Points), len(bs.Points))
	}
	for i := range ss.Points {
		sv, bv := ss.Points[i].Values[0], bs.Points[i].Values[0]
		if !ss.Points[i].Time.Equal(bs.Points[i].Time) {
			t.Fatalf("point %d time: %v vs %v", i, ss.Points[i].Time, bs.Points[i].Time)
		}
		if sv != bv && !(math.IsNaN(sv) && math.IsNaN(bv)) {
			t.Fatalf("point %d: serial %g, batched %g", i, sv, bv)
		}
	}
}

func TestUpdateBatchRejectsMultiSource(t *testing.T) {
	db, err := New(t0, time.Minute, []DS{
		{Name: "a", Type: Gauge, Heartbeat: 2 * time.Minute, Min: math.NaN(), Max: math.NaN()},
		{Name: "b", Type: Gauge, Heartbeat: 2 * time.Minute, Min: math.NaN(), Max: math.NaN()},
	}, []RRA{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.UpdateBatch([]Sample{{Time: t0.Add(time.Minute), Value: 1}}); err == nil {
		t.Fatal("multi-source batch accepted")
	}
}

func TestLastValueTracksNewestKnown(t *testing.T) {
	db, err := NewFromPolicy(t0, "v", ArchivalPolicy{Step: time.Hour, History: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(db.LastValue(Average)) {
		t.Fatal("empty archive returned a value")
	}
	for i := 1; i <= 10; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*time.Hour), float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// An update exactly on the step boundary completes its window, so the
	// newest consolidated row holds the 10th sample.
	if v := db.LastValue(Average); v != 110 {
		t.Fatalf("LastValue = %g, want 110", v)
	}
	if !math.IsNaN(db.LastValue(Max)) {
		t.Fatal("CF without an archive returned a value")
	}
	if !math.IsNaN(db.LastValueDS(Average, 5)) {
		t.Fatal("out-of-range source returned a value")
	}
	// A gap beyond the heartbeat consolidates a run of unknown rows;
	// LastValue still reports the last known one.
	if err := db.Update(t0.Add(20*time.Hour), math.NaN()); err != nil {
		t.Fatal(err)
	}
	if v := db.LastValue(Average); v != 110 {
		t.Fatalf("LastValue after gap = %g, want 110", v)
	}
	// New data after the gap takes over.
	if err := db.Update(t0.Add(21*time.Hour), 200); err != nil {
		t.Fatal(err)
	}
	if v := db.LastValue(Average); v != 200 {
		t.Fatalf("LastValue after recovery = %g, want 200", v)
	}
}

func TestLastValueAgreesWithFetchScan(t *testing.T) {
	// LastValue must agree with the old implementation: fetch a trailing
	// window and scan backwards for the last known value.
	db, err := NewFromPolicy(t0, "v", ArchivalPolicy{Step: 10 * time.Minute, Granularity: 2, History: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 37; i++ {
		v := float64(i)
		if i%5 == 0 {
			v = math.NaN()
		}
		if err := db.Update(t0.Add(time.Duration(i)*10*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	last := db.Last()
	s, err := db.Fetch(Average, last.Add(-24*time.Hour), last)
	if err != nil {
		t.Fatal(err)
	}
	want := math.NaN()
	for i := len(s.Points) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Points[i].Values[0]) {
			want = s.Points[i].Values[0]
			break
		}
	}
	got := db.LastValue(Average)
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("LastValue = %g, scan = %g", got, want)
	}
}
