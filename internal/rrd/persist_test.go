package rrd

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func populatedDB(t *testing.T, seed int64, updates int) *DB {
	t.Helper()
	ds := []DS{
		{Name: "bw", Type: Gauge, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()},
		{Name: "pkts", Type: Counter, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()},
	}
	rras := []RRA{
		{CF: Average, XFF: 0.5, Steps: 1, Rows: 64},
		{CF: Max, XFF: 0.3, Steps: 5, Rows: 32},
	}
	db, err := New(t0, time.Minute, ds, rras)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	counter := 0.0
	for i := 1; i <= updates; i++ {
		counter += float64(r.Intn(500))
		v := r.Float64() * 1000
		if r.Intn(10) == 0 {
			v = math.NaN()
		}
		// Irregular timestamps exercise partial PDP state.
		at := t0.Add(time.Duration(i)*time.Minute + time.Duration(r.Intn(30))*time.Second)
		if err := db.Update(at, v, counter); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func fetchAll(t *testing.T, db *DB, cf CF) *Series {
	t.Helper()
	s, err := db.Fetch(cf, t0, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seriesEqual compares fetched series treating NaN == NaN.
func seriesEqual(a, b *Series) bool {
	if a.Resolution != b.Resolution || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if !a.Points[i].Time.Equal(b.Points[i].Time) {
			return false
		}
		for j := range a.Points[i].Values {
			x, y := a.Points[i].Values[j], b.Points[i].Values[j]
			if math.IsNaN(x) != math.IsNaN(y) {
				return false
			}
			if !math.IsNaN(x) && x != y {
				return false
			}
		}
	}
	return true
}

func TestPersistRoundTrip(t *testing.T) {
	db := populatedDB(t, 1, 200)
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Step() != db.Step() || !back.Last().Equal(db.Last()) || back.Updates() != db.Updates() {
		t.Fatalf("metadata: step %v/%v last %v/%v updates %d/%d",
			back.Step(), db.Step(), back.Last(), db.Last(), back.Updates(), db.Updates())
	}
	if !reflect.DeepEqual(back.DSNames(), db.DSNames()) {
		t.Fatalf("ds names: %v vs %v", back.DSNames(), db.DSNames())
	}
	for _, cf := range []CF{Average, Max} {
		if !seriesEqual(fetchAll(t, db, cf), fetchAll(t, back, cf)) {
			t.Fatalf("%s series diverge after round trip", cf)
		}
	}
}

// TestPersistMidConsolidation: the in-progress PDP and CDP state must
// survive, so continuing updates after a reload matches never reloading.
func TestPersistContinuationProperty(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 1000
		orig := populatedDBQuiet(seed, 47) // 47 updates: mid-window for the 5-step RRA
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		reloaded, err := ReadDB(&buf)
		if err != nil {
			return false
		}
		// Apply identical further updates to both.
		r1 := rand.New(rand.NewSource(seed + 999))
		r2 := rand.New(rand.NewSource(seed + 999))
		applyMore(orig, r1, 30)
		applyMore(reloaded, r2, 30)
		for _, cf := range []CF{Average, Max} {
			a, err1 := orig.Fetch(cf, t0, t0.Add(24*time.Hour))
			b, err2 := reloaded.Fetch(cf, t0, t0.Add(24*time.Hour))
			if err1 != nil || err2 != nil || !seriesEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func populatedDBQuiet(seed int64, updates int) *DB {
	ds := []DS{
		{Name: "bw", Type: Gauge, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()},
		{Name: "pkts", Type: Counter, Heartbeat: 10 * time.Minute, Min: math.NaN(), Max: math.NaN()},
	}
	rras := []RRA{
		{CF: Average, XFF: 0.5, Steps: 1, Rows: 64},
		{CF: Max, XFF: 0.3, Steps: 5, Rows: 32},
	}
	db, _ := New(t0, time.Minute, ds, rras)
	r := rand.New(rand.NewSource(seed))
	counter := 0.0
	for i := 1; i <= updates; i++ {
		counter += float64(r.Intn(500))
		db.Update(t0.Add(time.Duration(i)*time.Minute+time.Duration(r.Intn(30))*time.Second),
			r.Float64()*1000, counter)
	}
	return db
}

func applyMore(db *DB, r *rand.Rand, n int) {
	last := db.Last()
	counter := 1e9 // restart-safe: Counter treats decrease as unknown once
	for i := 1; i <= n; i++ {
		counter += float64(r.Intn(500))
		db.Update(last.Add(time.Duration(i)*time.Minute), r.Float64()*1000, counter)
	}
}

func TestReadDBRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("\x00\x00\x00\x00\x00\x00\x00\x08NOTMAGIC"),
	}
	for _, c := range cases {
		if _, err := ReadDB(bytes.NewReader(c)); err == nil {
			t.Errorf("ReadDB accepted %q", c)
		}
	}
	// Truncated valid image.
	db := populatedDB(t, 2, 20)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadDB(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestPersistedImageIsCompact(t *testing.T) {
	db := populatedDB(t, 3, 500)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// 2 DS × (64+32) rows ≈ 1.5 KB of samples; the image must stay within
	// a small multiple, not balloon per-update.
	if buf.Len() > 8*1024 {
		t.Fatalf("image is %d bytes for 96 rows × 2 ds", buf.Len())
	}
}

func TestReloadedDBAcceptsUpdates(t *testing.T) {
	db := populatedDB(t, 4, 50)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Monotonicity is preserved: an update at or before the stored
	// lastUpdate is rejected; after succeeds.
	if err := back.Update(back.Last(), 1, 1); err == nil {
		t.Fatal("stale update accepted after reload")
	}
	if err := back.Update(back.Last().Add(time.Minute), 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReloadedDBReconstructsLastValue(t *testing.T) {
	db, err := NewFromPolicy(t0, "v", ArchivalPolicy{Step: time.Hour, History: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := db.Update(t0.Add(time.Duration(i)*time.Hour), float64(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	want := db.LastValue(Average)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.LastValue(Average); got != want {
		t.Fatalf("reloaded LastValue = %g, want %g", got, want)
	}
}
