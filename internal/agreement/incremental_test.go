package agreement

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

func reporterBranch(resource, site, reporterName string) branch.ID {
	return branch.MustParse(fmt.Sprintf("reporter=%s,resource=%s,site=%s,vo=tg", reporterName, resource, site))
}

// TestIncrementalMatchesEvaluate drives the incremental evaluator through
// a change sequence and checks its assembled status is observably
// identical to a one-shot Evaluate over the same cache at every step.
func TestIncrementalMatchesEvaluate(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	populateCompliant(t, c, "r2", "ncsa")
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r2", okBody())

	ag := smallAgreement()
	inc := NewIncremental(ag)
	if _, _, err := inc.Full(c, t0); err != nil {
		t.Fatal(err)
	}
	compare := func() {
		t.Helper()
		oneShot, err := Evaluate(ag, c, t0)
		if err != nil {
			t.Fatal(err)
		}
		if got := inc.Status(); !reflect.DeepEqual(oneShot, got) {
			t.Fatalf("divergence:\none-shot    %+v\nincremental %+v", oneShot, got)
		}
	}
	step := func(resource, site, reporterName string, build func(r *report.Report)) {
		t.Helper()
		fabricate(t, c, resource, site, reporterName, build)
		if _, err := inc.Update(c, []branch.ID{reporterBranch(resource, site, reporterName)}, t0); err != nil {
			t.Fatal(err)
		}
		compare()
	}

	compare()
	// A resource's own report breaks and recovers.
	step("r1", "sdsc", "grid.unit.globus", failBody("went red"))
	step("r1", "sdsc", "grid.unit.globus", okBody())
	// A cross-site probe hosted on other1 fails: r1's inbound check must
	// re-verify even though no r1 branch changed.
	step("other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", failBody("unreachable"))
	step("other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	// A brand-new resource appears mid-stream.
	step("r3", "psc", "grid.version.globus", versionBody("globus", "2.4.3"))
	// An unrelated-branch change (no resource component) is ignored.
	if _, err := inc.Update(c, []branch.ID{branch.MustParse("x=1,vo=tg")}, t0); err != nil {
		t.Fatal(err)
	}
	compare()
}

// TestIncrementalDeltaScope checks deltas cover exactly the resources
// whose outcome changed — including the cross-site dependents — and
// nothing else.
func TestIncrementalDeltaScope(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	populateCompliant(t, c, "r2", "ncsa")
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r2", okBody())

	inc := NewIncremental(smallAgreement())
	if _, deltas, err := inc.Full(c, t0); err != nil {
		t.Fatal(err)
	} else if len(deltas) != 3 { // r1, r2, other1 — nothing else
		names := make([]string, len(deltas))
		for i, d := range deltas {
			names[i] = d.Resource
		}
		t.Fatalf("seed deltas = %v", names)
	}

	// Break r2's own service report: exactly r2 changes.
	fabricate(t, c, "r2", "ncsa", "grid.service.gram-gatekeeper", failBody("down"))
	deltas, err := inc.Update(c, []branch.ID{reporterBranch("r2", "ncsa", "grid.service.gram-gatekeeper")}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Resource != "r2" || deltas[0].Status == nil {
		t.Fatalf("deltas = %+v, want one r2 delta", deltas)
	}

	// Re-store the identical bytes: everything re-verifies clean, no
	// outcome changes, no deltas.
	deltas, err = inc.Update(c, []branch.ID{reporterBranch("r2", "ncsa", "grid.service.gram-gatekeeper")}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("idempotent re-store produced deltas: %+v", deltas)
	}

	// other1's probe to r1 goes red: r1's inbound flips (it has only one
	// prober), other1's outbound still has a working destination — so the
	// delta set is {r1, other1} at most, and must contain r1.
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", failBody("refused"))
	deltas, err = inc.Update(c, []branch.ID{reporterBranch("other1", "anl", "grid.xsite.gram-gatekeeper.to.r1")}, t0)
	if err != nil {
		t.Fatal(err)
	}
	sawR1 := false
	for _, d := range deltas {
		switch d.Resource {
		case "r1", "other1":
			if d.Resource == "r1" {
				sawR1 = true
			}
		default:
			t.Fatalf("unexpected delta for %s", d.Resource)
		}
	}
	if !sawR1 {
		t.Fatalf("cross-site dependency missed: no r1 delta in %+v", deltas)
	}
}

// TestIncrementalFullDetectsRemovals: a periodic Full sweep emits a
// nil-status delta for a resource that left the cache.
func TestIncrementalFullDetectsRemovals(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	populateCompliant(t, c, "r2", "ncsa")
	inc := NewIncremental(smallAgreement())
	if _, _, err := inc.Full(c, t0); err != nil {
		t.Fatal(err)
	}

	smaller := depot.NewStreamCache()
	populateCompliant(t, smaller, "r1", "sdsc")
	_, deltas, err := inc.Full(smaller, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var removed []string
	for _, d := range deltas {
		if d.Status == nil {
			removed = append(removed, d.Resource)
		}
	}
	if len(removed) != 1 || removed[0] != "r2" {
		t.Fatalf("removals = %v, want [r2]", removed)
	}
	if got := inc.Status(); len(got.Resources) != 1 || got.Resources[0].Resource != "r1" {
		t.Fatalf("status after removal: %+v", got.Resources)
	}
}
