package agreement

import (
	"testing"
	"testing/quick"
)

func TestCompareVersionsBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2.4.3", "2.4.3", 0},
		{"2.4.3", "2.4.0", 1},
		{"2.4.0", "2.4.3", -1},
		{"2.4", "2.4.0", 0},
		{"2.10", "2.9", 1}, // numeric, not lexical
		{"10.0", "9.9", 1},
		{"1.2.5", "1.2.5p1", -1}, // patch suffix sorts after
		{"4.2r0", "4.2r1", -1},
		{"3.8.1p1", "3.8.1", 1},
		{"1.6.2", "1.6.2", 0},
		{"2.4.rc1", "2.4.0", 1}, // letters sort after numbers
		{"", "", 0},
		{"1", "", 1},
	}
	for _, c := range cases {
		if got := CompareVersions(c.a, c.b); got != c.want {
			t.Errorf("CompareVersions(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareVersionsAntisymmetricProperty(t *testing.T) {
	versions := []string{"1.0", "2.4.3", "2.4", "4.2r0", "3.8.1p1", "10.2", "0.9.9", "2.4.rc1"}
	f := func(ai, bi uint8) bool {
		a := versions[int(ai)%len(versions)]
		b := versions[int(bi)%len(versions)]
		return CompareVersions(a, b) == -CompareVersions(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareVersionsTransitivityOnChain(t *testing.T) {
	chain := []string{"0.9", "1.0", "1.0.1", "1.2", "1.2.5", "1.2.5p1", "2.0", "2.4.rc1", "10.0"}
	for i := 1; i < len(chain); i++ {
		if CompareVersions(chain[i-1], chain[i]) >= 0 {
			t.Errorf("chain order violated: %q >= %q", chain[i-1], chain[i])
		}
	}
}

func TestConstraintSatisfied(t *testing.T) {
	cases := []struct {
		c    Constraint
		v    string
		want bool
	}{
		{Constraint{}, "anything", true},
		{Constraint{Op: "any"}, "1.0", true},
		{Constraint{Op: "==", Version: "2.4.3"}, "2.4.3", true},
		{Constraint{Op: "==", Version: "2.4.3"}, "2.4.4", false},
		{Constraint{Op: ">=", Version: "2.4.0"}, "2.4.3", true},
		{Constraint{Op: ">=", Version: "2.4.0"}, "2.4.0", true},
		{Constraint{Op: ">=", Version: "2.4.0"}, "2.3.9", false},
		{Constraint{Op: ">", Version: "1.0"}, "1.0", false},
		{Constraint{Op: "<=", Version: "3.0"}, "3.0", true},
		{Constraint{Op: "<", Version: "3.0"}, "2.9", true},
		{Constraint{Op: "???", Version: "1"}, "1", false},
	}
	for _, c := range cases {
		if got := c.c.Satisfied(c.v); got != c.want {
			t.Errorf("%s.Satisfied(%q) = %v, want %v", c.c, c.v, got, c.want)
		}
	}
}

func TestConstraintString(t *testing.T) {
	if (Constraint{}).String() != "any" {
		t.Fatal("empty constraint string")
	}
	if (Constraint{Op: ">=", Version: "2.4.0"}).String() != ">=2.4.0" {
		t.Fatal("constraint string")
	}
}

func TestAgreementXMLRoundTrip(t *testing.T) {
	ag := TeraGrid()
	data, err := Marshal(ag)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if back.Name != ag.Name || back.VO != ag.VO || back.MaxAge != ag.MaxAge {
		t.Fatalf("metadata round trip: %+v", back)
	}
	if len(back.Packages) != len(ag.Packages) || len(back.Services) != len(ag.Services) ||
		len(back.Env) != len(ag.Env) || len(back.SoftEnv) != len(ag.SoftEnv) {
		t.Fatalf("cardinality round trip: %d/%d %d/%d %d/%d %d/%d",
			len(back.Packages), len(ag.Packages), len(back.Services), len(ag.Services),
			len(back.Env), len(ag.Env), len(back.SoftEnv), len(ag.SoftEnv))
	}
	for i := range ag.Packages {
		if back.Packages[i] != ag.Packages[i] {
			t.Fatalf("package %d: %+v != %+v", i, back.Packages[i], ag.Packages[i])
		}
	}
}

func TestAgreementParseErrors(t *testing.T) {
	cases := []string{
		"not xml",
		`<serviceAgreement/>`, // no name
		`<serviceAgreement name="x" maxAge="soon"/>`,
		`<serviceAgreement name="x"><package name="p" category="Bogus"/></serviceAgreement>`,
		`<serviceAgreement name="x"><service name="s" category="Nope"/></serviceAgreement>`,
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestTeraGridAgreementShape(t *testing.T) {
	ag := TeraGrid()
	// 24 core stack packages minus gm, which reduced hosts legitimately
	// lack.
	if len(ag.Packages) != 23 {
		t.Fatalf("packages = %d, want 23", len(ag.Packages))
	}
	if len(ag.Services) != 4 {
		t.Fatalf("services = %d", len(ag.Services))
	}
	crossSite := 0
	for _, s := range ag.Services {
		if s.CrossSite {
			crossSite++
		}
	}
	if crossSite != 2 {
		t.Fatalf("cross-site services = %d, want 2", crossSite)
	}
	// All packages demand unit tests per the hosting environment contract.
	for _, p := range ag.Packages {
		if !p.UnitTest {
			t.Fatalf("package %s lacks unit test requirement", p.Name)
		}
	}
}
