// Package agreement implements machine-readable VO service agreements and
// the verification engine that measures resource compliance against them
// (paper Sections 2.2, 3.3, 4.1): package version constraints, unit test
// requirements, service availability (including the two-way cross-site
// metric), default-environment variables, and SoftEnv keys — with results
// rolled up into the Grid / Development / Cluster summary percentages of
// the Figure 4 status pages.
package agreement

import (
	"strconv"
	"strings"
)

// CompareVersions orders dotted, possibly alphanumeric version strings
// ("2.4.3", "1.6.2", "4.2r0", "3.8.1p1"). Numeric runs compare numerically,
// letter runs lexically; missing segments count as zero, so "2.4" == "2.4.0".
func CompareVersions(a, b string) int {
	as, bs := versionTokens(a), versionTokens(b)
	for i := 0; i < len(as) || i < len(bs); i++ {
		var at, bt string
		if i < len(as) {
			at = as[i]
		}
		if i < len(bs) {
			bt = bs[i]
		}
		if c := compareToken(at, bt); c != 0 {
			return c
		}
	}
	return 0
}

// versionTokens splits "4.2r0" into ["4", "2", "r", "0"].
func versionTokens(v string) []string {
	var toks []string
	var cur strings.Builder
	var curDigit bool
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			if cur.Len() > 0 && !curDigit {
				flush()
			}
			curDigit = true
			cur.WriteRune(r)
		case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			if cur.Len() > 0 && curDigit {
				flush()
			}
			curDigit = false
			cur.WriteRune(r)
		default: // separators
			flush()
		}
	}
	flush()
	return toks
}

func compareToken(a, b string) int {
	an, aerr := strconv.Atoi(a)
	bn, berr := strconv.Atoi(b)
	switch {
	case a == "" && b == "":
		return 0
	case a == "":
		// Missing numeric segment counts as 0; missing vs letters sorts
		// before (2.4 < 2.4a).
		if berr == nil {
			an, aerr = 0, nil
		} else {
			return -1
		}
	case b == "":
		if aerr == nil {
			bn, berr = 0, nil
		} else {
			return 1
		}
	}
	switch {
	case aerr == nil && berr == nil:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	case aerr == nil:
		return -1 // numbers sort before letters (2.4.0 < 2.4.rc1)
	case berr == nil:
		return 1
	default:
		return strings.Compare(a, b)
	}
}

// Constraint is a version requirement.
type Constraint struct {
	// Op is one of "", "any", "==", ">=", ">", "<=", "<".
	// Empty and "any" accept every version.
	Op      string
	Version string
}

// Satisfied reports whether v meets the constraint.
func (c Constraint) Satisfied(v string) bool {
	switch c.Op {
	case "", "any":
		return true
	}
	cmp := CompareVersions(v, c.Version)
	switch c.Op {
	case "==":
		return cmp == 0
	case ">=":
		return cmp >= 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case "<":
		return cmp < 0
	default:
		return false
	}
}

// String renders the constraint.
func (c Constraint) String() string {
	switch c.Op {
	case "", "any":
		return "any"
	default:
		return c.Op + c.Version
	}
}
