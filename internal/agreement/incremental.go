package agreement

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

// Delta is one resource's status change between evaluations — the unit
// the live status stream pushes (the paper's Figure 4 grid, one row at a
// time instead of the whole page).
type Delta struct {
	Resource string
	// Status is the resource's new verification outcome; nil when the
	// resource vanished from the cache.
	Status *ResourceStatus
}

// Incremental is the change-feed form of Evaluate: it retains the parsed
// report index and the per-resource outcomes across cycles, and re-runs
// verification only for resources whose input reports changed. The
// cross-site dependency is tracked explicitly: a report named
// "grid.xsite.<svc>.to.<target>" stored under resource A is *input* to
// target's inbound check, so a change to it dirties both A and target.
//
// Staleness (MaxAge) is a function of wall time, not of any report
// change, so a caller must still run Full periodically — an idle resource
// goes red by aging, with no event to trigger it.
type Incremental struct {
	ag     *Agreement
	prefix branch.ID

	memo       map[string]*incMemo // branch string → parsed + placement
	byResource map[string]*indexed
	statuses   map[string]*ResourceStatus
	at         time.Time
}

// incMemo is one branch's retained parse plus where it was indexed, so an
// update can un-index the previous report before placing the new one.
type incMemo struct {
	xml      []byte
	rep      *report.Report
	resource string
	name     string
	live     bool
}

// NewIncremental returns an incremental evaluator. Call Full once to
// seed it, then Update with changed branches.
func NewIncremental(ag *Agreement) *Incremental {
	prefix := branch.ID{}
	if ag.VO != "" {
		prefix = branch.MustParse("vo=" + ag.VO)
	}
	return &Incremental{
		ag:         ag,
		prefix:     prefix,
		memo:       make(map[string]*incMemo),
		byResource: make(map[string]*indexed),
		statuses:   make(map[string]*ResourceStatus),
	}
}

// Status assembles the current full outcome from the retained
// per-resource statuses (the live stream's snapshot).
func (inc *Incremental) Status() *VOStatus {
	status := &VOStatus{Agreement: inc.ag, At: inc.at}
	resources := make([]string, 0, len(inc.statuses))
	for r := range inc.statuses {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	for _, r := range resources {
		status.Resources = append(status.Resources, inc.statuses[r])
	}
	return status
}

// Full rebuilds the index from the whole cache and re-verifies every
// resource, returning the deltas against the previous evaluation
// (including removals). It is both the seed and the periodic
// staleness/consistency sweep.
func (inc *Incremental) Full(cache depot.Cache, now time.Time) (*VOStatus, []Delta, error) {
	stored, err := cache.Reports(inc.prefix)
	if err != nil {
		return nil, nil, fmt.Errorf("agreement: cache read: %w", err)
	}
	for _, m := range inc.memo {
		m.live = false
	}
	inc.byResource = make(map[string]*indexed)
	for _, s := range stored {
		inc.place(s.ID, s.XML)
	}
	for key, m := range inc.memo {
		if !m.live {
			delete(inc.memo, key)
		}
	}
	// Every current resource is dirty; removed resources are deltas too.
	dirty := make(map[string]bool, len(inc.byResource))
	for res := range inc.byResource {
		dirty[res] = true
	}
	for res := range inc.statuses {
		if _, ok := inc.byResource[res]; !ok {
			dirty[res] = true
		}
	}
	deltas := inc.reevaluate(dirty, now)
	return inc.Status(), deltas, nil
}

// Update re-reads only the changed branches, re-verifies the resources
// they feed, and returns the resulting deltas. Branches outside the
// agreement's VO prefix or without a resource component are ignored.
func (inc *Incremental) Update(cache depot.Cache, changed []branch.ID, now time.Time) ([]Delta, error) {
	dirty := make(map[string]bool)
	for _, b := range changed {
		if !inc.prefix.IsRoot() && !b.HasSuffix(inc.prefix) {
			continue
		}
		if _, ok := b.Get("resource"); !ok {
			continue
		}
		stored, err := cache.Reports(b)
		if err != nil {
			return nil, fmt.Errorf("agreement: cache read %s: %w", b, err)
		}
		if len(stored) == 0 {
			// The branch left the cache: un-index whatever it held.
			key := b.String()
			if m, ok := inc.memo[key]; ok {
				inc.unplace(m, dirty)
				delete(inc.memo, key)
			}
			continue
		}
		for _, s := range stored {
			for res := range inc.placeDirty(s.ID, s.XML) {
				dirty[res] = true
			}
		}
	}
	return inc.reevaluate(dirty, now), nil
}

// place indexes one stored report (Full path: dirtiness is global).
func (inc *Incremental) place(id branch.ID, xmlBytes []byte) {
	inc.placeDirty(id, xmlBytes)
}

// placeDirty indexes one stored report and returns the resources whose
// verification inputs it touched: its own resource, plus the cross-site
// target of both the previous and the new report name.
func (inc *Incremental) placeDirty(id branch.ID, xmlBytes []byte) map[string]bool {
	dirty := make(map[string]bool)
	res, ok := id.Get("resource")
	if !ok {
		return dirty
	}
	key := id.String()
	m := inc.memo[key]
	if m == nil || !bytes.Equal(m.xml, xmlBytes) {
		rep, err := report.Parse(xmlBytes)
		if err != nil {
			// Foreign data is not agreement input, but if it *replaced*
			// a report we must un-index the old one.
			if m != nil {
				inc.unplace(m, dirty)
				delete(inc.memo, key)
			}
			return dirty
		}
		if m != nil {
			inc.unplace(m, dirty)
		}
		m = &incMemo{
			xml:      append([]byte(nil), xmlBytes...),
			rep:      rep,
			resource: res,
			name:     rep.Header.Name,
		}
		inc.memo[key] = m
	}
	m.live = true
	// Indexing is idempotent, and Full rebuilds byResource from scratch,
	// so a memo hit must still place its report.
	idx := inc.byResource[res]
	if idx == nil {
		site, _ := id.Get("site")
		idx = &indexed{site: site, reports: make(map[string]*report.Report), branch: make(map[string]branch.ID)}
		inc.byResource[res] = idx
	}
	idx.reports[m.name] = m.rep
	idx.branch[m.name] = id
	dirty[res] = true
	if target, ok := xsiteTarget(m.name); ok {
		dirty[target] = true
	}
	return dirty
}

// unplace removes a memoized report from the resource index and dirties
// everything that depended on it.
func (inc *Incremental) unplace(m *incMemo, dirty map[string]bool) {
	if idx := inc.byResource[m.resource]; idx != nil {
		if idx.reports[m.name] == m.rep {
			delete(idx.reports, m.name)
			delete(idx.branch, m.name)
		}
		if len(idx.reports) == 0 {
			delete(inc.byResource, m.resource)
		}
	}
	dirty[m.resource] = true
	if target, ok := xsiteTarget(m.name); ok {
		dirty[target] = true
	}
}

// xsiteTarget extracts the destination resource from a cross-site
// reporter name ("grid.xsite.<svc>.to.<target>").
func xsiteTarget(name string) (string, bool) {
	if !strings.Contains(name, "grid.xsite.") {
		return "", false
	}
	i := strings.LastIndex(name, ".to.")
	if i < 0 {
		return "", false
	}
	target := name[i+len(".to."):]
	return target, target != ""
}

// reevaluate runs evaluateResource for each dirty resource and returns
// the deltas against the retained statuses.
func (inc *Incremental) reevaluate(dirty map[string]bool, now time.Time) []Delta {
	inc.at = now
	resources := make([]string, 0, len(dirty))
	for r := range dirty {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	var deltas []Delta
	for _, res := range resources {
		idx, ok := inc.byResource[res]
		if !ok {
			if _, had := inc.statuses[res]; had {
				delete(inc.statuses, res)
				deltas = append(deltas, Delta{Resource: res})
			}
			continue
		}
		rs := evaluateResource(inc.ag, res, idx, inc.byResource, now)
		if prev, ok := inc.statuses[res]; ok && equalStatus(prev, rs) {
			continue
		}
		inc.statuses[res] = rs
		deltas = append(deltas, Delta{Resource: res, Status: rs})
	}
	return deltas
}

// equalStatus compares two resource outcomes field by field (TestResult
// holds a branch.ID, which is not ==-comparable).
func equalStatus(a, b *ResourceStatus) bool {
	if a.Resource != b.Resource || a.Site != b.Site || len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		x, y := a.Results[i], b.Results[i]
		if x.Resource != y.Resource || x.Category != y.Category || x.Test != y.Test ||
			x.Pass != y.Pass || x.Detail != y.Detail || x.Pieces != y.Pieces ||
			!x.Branch.Equal(y.Branch) {
			return false
		}
	}
	return true
}
