package agreement

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"time"
)

// The machine-readable XML form of a service agreement (Section 4.1: "a
// machine-readable version of the service agreement was formatted in XML").

type xmlAgreement struct {
	XMLName  xml.Name     `xml:"serviceAgreement"`
	Name     string       `xml:"name,attr"`
	VO       string       `xml:"vo,attr"`
	MaxAge   string       `xml:"maxAge,attr,omitempty"`
	Packages []xmlPackage `xml:"package"`
	Services []xmlService `xml:"service"`
	Env      []xmlEnv     `xml:"env"`
	SoftEnv  []xmlSoftEnv `xml:"softenv"`
}

type xmlPackage struct {
	Name     string `xml:"name,attr"`
	Category string `xml:"category,attr"`
	Op       string `xml:"versionOp,attr,omitempty"`
	Version  string `xml:"version,attr,omitempty"`
	UnitTest bool   `xml:"unitTest,attr"`
}

type xmlService struct {
	Name      string `xml:"name,attr"`
	Category  string `xml:"category,attr"`
	CrossSite bool   `xml:"crossSite,attr"`
}

type xmlEnv struct {
	Name     string `xml:"name,attr"`
	Value    string `xml:"value,attr,omitempty"`
	Category string `xml:"category,attr"`
}

type xmlSoftEnv struct {
	Key      string `xml:"key,attr"`
	Category string `xml:"category,attr"`
}

// Marshal renders the agreement as XML.
func Marshal(ag *Agreement) ([]byte, error) {
	x := xmlAgreement{Name: ag.Name, VO: ag.VO}
	if ag.MaxAge > 0 {
		x.MaxAge = ag.MaxAge.String()
	}
	for _, p := range ag.Packages {
		x.Packages = append(x.Packages, xmlPackage{
			Name: p.Name, Category: string(p.Category),
			Op: p.Version.Op, Version: p.Version.Version, UnitTest: p.UnitTest,
		})
	}
	for _, s := range ag.Services {
		x.Services = append(x.Services, xmlService{Name: s.Name, Category: string(s.Category), CrossSite: s.CrossSite})
	}
	for _, e := range ag.Env {
		x.Env = append(x.Env, xmlEnv{Name: e.Name, Value: e.Value, Category: string(e.Category)})
	}
	for _, k := range ag.SoftEnv {
		x.SoftEnv = append(x.SoftEnv, xmlSoftEnv{Key: k.Key, Category: string(k.Category)})
	}
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Parse reads the XML form back.
func Parse(data []byte) (*Agreement, error) {
	var x xmlAgreement
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("agreement: %w", err)
	}
	if x.Name == "" {
		return nil, fmt.Errorf("agreement: missing name attribute")
	}
	ag := &Agreement{Name: x.Name, VO: x.VO}
	if x.MaxAge != "" {
		d, err := time.ParseDuration(x.MaxAge)
		if err != nil {
			return nil, fmt.Errorf("agreement: bad maxAge %q: %w", x.MaxAge, err)
		}
		ag.MaxAge = d
	}
	cat := func(s, context string) (Category, error) {
		switch Category(s) {
		case Grid, Development, Cluster:
			return Category(s), nil
		default:
			return "", fmt.Errorf("agreement: unknown category %q for %s", s, context)
		}
	}
	for _, p := range x.Packages {
		c, err := cat(p.Category, p.Name)
		if err != nil {
			return nil, err
		}
		ag.Packages = append(ag.Packages, PackageReq{
			Name: p.Name, Category: c,
			Version:  Constraint{Op: p.Op, Version: p.Version},
			UnitTest: p.UnitTest,
		})
	}
	for _, s := range x.Services {
		c, err := cat(s.Category, s.Name)
		if err != nil {
			return nil, err
		}
		ag.Services = append(ag.Services, ServiceReq{Name: s.Name, Category: c, CrossSite: s.CrossSite})
	}
	for _, e := range x.Env {
		c, err := cat(e.Category, e.Name)
		if err != nil {
			return nil, err
		}
		ag.Env = append(ag.Env, EnvReq{Name: e.Name, Value: e.Value, Category: c})
	}
	for _, k := range x.SoftEnv {
		c, err := cat(k.Category, k.Key)
		if err != nil {
			return nil, err
		}
		ag.SoftEnv = append(ag.SoftEnv, SoftEnvReq{Key: k.Key, Category: c})
	}
	return ag, nil
}
