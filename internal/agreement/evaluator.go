package agreement

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

// Evaluator is the repeated-verification form of Evaluate: it memoizes
// parsed reports across cycles, re-parsing only entries whose cached bytes
// changed since the previous evaluation. With 10-minute snapshot cycles
// over an hourly collection schedule (the Figure 5 configuration), five of
// every six cycles see mostly unchanged bytes, so this is the paper's
// "optimized for common queries" behaviour for the most common consumer
// query of all.
type Evaluator struct {
	ag   *Agreement
	memo map[string]*memoEntry
}

type memoEntry struct {
	xml  []byte
	rep  *report.Report
	live bool // touched during the current cycle
}

// NewEvaluator returns an evaluator for the agreement.
func NewEvaluator(ag *Agreement) *Evaluator {
	return &Evaluator{ag: ag, memo: make(map[string]*memoEntry)}
}

// Evaluate verifies the cache exactly as the package-level Evaluate does,
// reusing parsed reports where the cached bytes are unchanged.
func (e *Evaluator) Evaluate(cache depot.Cache, now time.Time) (*VOStatus, error) {
	prefix := branch.ID{}
	if e.ag.VO != "" {
		prefix = branch.MustParse("vo=" + e.ag.VO)
	}
	stored, err := cache.Reports(prefix)
	if err != nil {
		return nil, fmt.Errorf("agreement: cache read: %w", err)
	}
	for _, m := range e.memo {
		m.live = false
	}
	byResource := make(map[string]*indexed)
	for _, s := range stored {
		res, ok := s.ID.Get("resource")
		if !ok {
			continue
		}
		idx, ok := byResource[res]
		if !ok {
			site, _ := s.ID.Get("site")
			idx = &indexed{site: site, reports: make(map[string]*report.Report), branch: make(map[string]branch.ID)}
			byResource[res] = idx
		}
		key := s.ID.String()
		m := e.memo[key]
		if m == nil || !bytes.Equal(m.xml, s.XML) {
			rep, err := report.Parse(s.XML)
			if err != nil {
				continue // foreign data in the cache is not agreement input
			}
			m = &memoEntry{xml: s.XML, rep: rep}
			e.memo[key] = m
		}
		m.live = true
		idx.reports[m.rep.Header.Name] = m.rep
		idx.branch[m.rep.Header.Name] = s.ID
	}
	// Entries that vanished from the cache leave the memo.
	for key, m := range e.memo {
		if !m.live {
			delete(e.memo, key)
		}
	}

	status := &VOStatus{Agreement: e.ag, At: now}
	resources := make([]string, 0, len(byResource))
	for r := range byResource {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	for _, res := range resources {
		status.Resources = append(status.Resources, evaluateResource(e.ag, res, byResource[res], byResource, now))
	}
	return status, nil
}

// MemoSize reports how many parsed reports are currently retained.
func (e *Evaluator) MemoSize() int { return len(e.memo) }
