package agreement

import (
	"time"

	"inca/internal/gridsim"
)

// TeraGrid builds the TeraGrid Hosting Environment service agreement
// (Section 4.1): the CTSS software stack with exact version requirements
// and unit tests, the four cross-site services, the default-environment
// variables, and the SoftEnv keys.
func TeraGrid() *Agreement {
	ag := &Agreement{
		Name:   "Common TeraGrid Software and Services 2.0",
		VO:     "teragrid",
		MaxAge: 4 * time.Hour,
	}
	addPkgs := func(m map[string]string, cat Category) {
		for _, name := range sortedStringKeys(m) {
			// gm (Myrinet) is absent on the reduced Alpha hosts, so the
			// common agreement cannot require it (see gridsim).
			if name == gridsim.ReducedSkipPackage {
				continue
			}
			ag.Packages = append(ag.Packages, PackageReq{
				Name:     name,
				Category: cat,
				Version:  Constraint{Op: ">=", Version: m[name]},
				UnitTest: true,
			})
		}
	}
	addPkgs(gridsim.GridPackages, Grid)
	addPkgs(gridsim.DevelopmentPackages, Development)
	addPkgs(gridsim.ClusterPackages, Cluster)

	for _, svc := range gridsim.TeraGridServices {
		ag.Services = append(ag.Services, ServiceReq{
			Name:      svc.Name,
			Category:  Grid,
			CrossSite: svc.Name == "gram-gatekeeper" || svc.Name == "gridftp",
		})
	}
	for _, name := range sortedStringKeys(gridsim.TeraGridEnv) {
		ag.Env = append(ag.Env, EnvReq{Name: name, Value: gridsim.TeraGridEnv[name], Category: Cluster})
	}
	ag.SoftEnv = append(ag.SoftEnv,
		SoftEnvReq{Key: "@teragrid", Category: Cluster},
		SoftEnvReq{Key: "+globus", Category: Cluster},
		SoftEnvReq{Key: "+mpich", Category: Cluster},
	)
	return ag
}

func sortedStringKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
