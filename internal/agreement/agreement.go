package agreement

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

// Category is a status-page grouping; the TeraGrid agreement uses Grid,
// Development, and Cluster (Section 4.1).
type Category string

// The TeraGrid categories.
const (
	Grid        Category = "Grid"
	Development Category = "Development"
	Cluster     Category = "Cluster"
)

// Categories lists the standard order for summaries.
var Categories = []Category{Grid, Development, Cluster}

// PackageReq requires a software package: an acceptable version and,
// optionally, a passing unit test ("Green indicates that an acceptable
// version of a software package is located on a resource and the unit
// tests pass").
type PackageReq struct {
	Name     string
	Category Category
	Version  Constraint
	// UnitTest requires the package's unit test reporter to pass.
	UnitTest bool
}

// ServiceReq requires a persistent service. CrossSite additionally applies
// the Section 3.3 metric: (1) at least one other resource can access this
// resource's service, and (2) this resource can access at least one other
// resource's service.
type ServiceReq struct {
	Name      string
	Category  Category
	CrossSite bool
}

// EnvReq requires a default-environment variable (empty Value = any).
type EnvReq struct {
	Name     string
	Value    string
	Category Category
}

// SoftEnvReq requires a SoftEnv database key.
type SoftEnvReq struct {
	Key      string
	Category Category
}

// Agreement is one machine-readable VO service agreement.
type Agreement struct {
	Name     string
	VO       string
	Packages []PackageReq
	Services []ServiceReq
	Env      []EnvReq
	SoftEnv  []SoftEnvReq
	// MaxAge marks data older than this as stale (a resource whose agent
	// stopped reporting should go red, not stay green forever). Zero
	// disables the check.
	MaxAge time.Duration
}

// TestResult is the outcome of one agreement test on one resource.
type TestResult struct {
	Resource string
	Category Category
	// Test names the check, e.g. "globus-2.4.3: version".
	Test string
	Pass bool
	// Detail carries the failure explanation shown behind the status
	// page's error link.
	Detail string
	// Branch points at the data the result came from, for debugging.
	Branch branch.ID
	// Pieces is how many cached data items this result compared (1 for
	// simple checks; the cross-site aggregates examine one report per
	// destination). Feeds PiecesVerified.
	Pieces int
}

// CategorySummary is one cell block of the Figure 4 table.
type CategorySummary struct {
	Category Category
	Pass     int
	Fail     int
}

// Percent returns the pass percentage (100 for an empty category).
func (c CategorySummary) Percent() float64 {
	total := c.Pass + c.Fail
	if total == 0 {
		return 100
	}
	return 100 * float64(c.Pass) / float64(total)
}

// Applicable reports whether the category had any tests (Figure 4 shows
// "n/a" otherwise).
func (c CategorySummary) Applicable() bool { return c.Pass+c.Fail > 0 }

// ResourceStatus is one resource's verification outcome.
type ResourceStatus struct {
	Resource string
	Site     string
	Results  []TestResult
}

// Summary rolls results up per category.
func (rs *ResourceStatus) Summary() []CategorySummary {
	out := make([]CategorySummary, len(Categories))
	for i, c := range Categories {
		out[i].Category = c
	}
	for _, r := range rs.Results {
		for i := range out {
			if out[i].Category == r.Category {
				if r.Pass {
					out[i].Pass++
				} else {
					out[i].Fail++
				}
			}
		}
	}
	return out
}

// Total returns the combined pass/fail counts.
func (rs *ResourceStatus) Total() CategorySummary {
	t := CategorySummary{Category: "Total"}
	for _, r := range rs.Results {
		if r.Pass {
			t.Pass++
		} else {
			t.Fail++
		}
	}
	return t
}

// Failures returns the failed results, for the expanded error view.
func (rs *ResourceStatus) Failures() []TestResult {
	var out []TestResult
	for _, r := range rs.Results {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}

// VOStatus is the whole VO's verification outcome.
type VOStatus struct {
	Agreement *Agreement
	At        time.Time
	Resources []*ResourceStatus
}

// PiecesVerified counts individual verified data comparisons (the paper's
// "over 900 pieces of data are compared and verified"): one per simple
// check, one per destination for the cross-site aggregates.
func (v *VOStatus) PiecesVerified() int {
	n := 0
	for _, r := range v.Resources {
		for _, res := range r.Results {
			if res.Pieces > 1 {
				n += res.Pieces
			} else {
				n++
			}
		}
	}
	return n
}

// indexed holds the parsed latest reports for one resource, keyed by
// reporter name.
type indexed struct {
	site    string
	reports map[string]*report.Report
	branch  map[string]branch.ID
}

// Evaluate verifies every resource found in the cache against the
// agreement at time now. Resources are discovered from the cached data
// itself (branch component "resource"), so a new resource needs no
// verifier configuration — mirroring the depot's no-configuration design.
func Evaluate(ag *Agreement, cache depot.Cache, now time.Time) (*VOStatus, error) {
	prefix := branch.ID{}
	if ag.VO != "" {
		prefix = branch.MustParse("vo=" + ag.VO)
	}
	stored, err := cache.Reports(prefix)
	if err != nil {
		return nil, fmt.Errorf("agreement: cache read: %w", err)
	}
	byResource := make(map[string]*indexed)
	for _, s := range stored {
		res, ok := s.ID.Get("resource")
		if !ok {
			continue
		}
		idx, ok := byResource[res]
		if !ok {
			site, _ := s.ID.Get("site")
			idx = &indexed{site: site, reports: make(map[string]*report.Report), branch: make(map[string]branch.ID)}
			byResource[res] = idx
		}
		rep, err := report.Parse(s.XML)
		if err != nil {
			continue // foreign data in the cache is not agreement input
		}
		idx.reports[rep.Header.Name] = rep
		idx.branch[rep.Header.Name] = s.ID
	}

	status := &VOStatus{Agreement: ag, At: now}
	resources := make([]string, 0, len(byResource))
	for r := range byResource {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	for _, res := range resources {
		rs := evaluateResource(ag, res, byResource[res], byResource, now)
		status.Resources = append(status.Resources, rs)
	}
	return status, nil
}

func evaluateResource(ag *Agreement, res string, idx *indexed, all map[string]*indexed, now time.Time) *ResourceStatus {
	rs := &ResourceStatus{Resource: res, Site: idx.site}
	fresh := func(rep *report.Report) (bool, string) {
		if ag.MaxAge <= 0 {
			return true, ""
		}
		if age := now.Sub(rep.Header.GMT); age > ag.MaxAge {
			return false, fmt.Sprintf("data is stale (%v old)", age.Round(time.Minute))
		}
		return true, ""
	}
	lookup := func(suffix string) (*report.Report, branch.ID, bool) {
		for name, rep := range idx.reports {
			if strings.HasSuffix(name, suffix) {
				return rep, idx.branch[name], true
			}
		}
		return nil, branch.ID{}, false
	}

	add := func(cat Category, test string, pass bool, detail string, b branch.ID) {
		rs.Results = append(rs.Results, TestResult{
			Resource: res, Category: cat, Test: test, Pass: pass, Detail: detail, Branch: b,
		})
	}

	for _, p := range ag.Packages {
		// Version check.
		test := fmt.Sprintf("%s: version %s", p.Name, p.Version)
		rep, b, ok := lookup(".version." + p.Name)
		switch {
		case !ok:
			add(p.Category, test, false, "no version report collected", branch.ID{})
		case !rep.Succeeded():
			add(p.Category, test, false, rep.Footer.ErrorMessage, b)
		default:
			if ok, why := fresh(rep); !ok {
				add(p.Category, test, false, why, b)
				break
			}
			v, found := rep.Body.Value("version,package=" + p.Name)
			switch {
			case !found:
				add(p.Category, test, false, "version report has no version element", b)
			case !p.Version.Satisfied(v):
				add(p.Category, test, false, fmt.Sprintf("installed %s does not satisfy %s", v, p.Version), b)
			default:
				add(p.Category, test, true, "", b)
			}
		}
		if !p.UnitTest {
			continue
		}
		utest := fmt.Sprintf("%s: unit test", p.Name)
		urep, ub, ok := lookup(".unit." + p.Name)
		switch {
		case !ok:
			add(p.Category, utest, false, "no unit test report collected", branch.ID{})
		case !urep.Succeeded():
			add(p.Category, utest, false, urep.Footer.ErrorMessage, ub)
		default:
			if ok, why := fresh(urep); !ok {
				add(p.Category, utest, false, why, ub)
			} else {
				add(p.Category, utest, true, "", ub)
			}
		}
	}

	for _, s := range ag.Services {
		test := s.Name + ": service"
		rep, b, ok := lookup("grid.service." + s.Name)
		switch {
		case !ok:
			add(s.Category, test, false, "no service report collected", branch.ID{})
		case !rep.Succeeded():
			add(s.Category, test, false, rep.Footer.ErrorMessage, b)
		default:
			if ok, why := fresh(rep); !ok {
				add(s.Category, test, false, why, b)
			} else {
				add(s.Category, test, true, "", b)
			}
		}
		if !s.CrossSite {
			continue
		}
		// Section 3.3's two-way availability metric.
		outOK, outDetail, outN := crossSiteOutbound(idx, s.Name)
		add(s.Category, s.Name+": cross-site outbound", outOK, outDetail, branch.ID{})
		rs.Results[len(rs.Results)-1].Pieces = outN
		inOK, inDetail, inN := crossSiteInbound(all, res, s.Name)
		add(s.Category, s.Name+": cross-site inbound", inOK, inDetail, branch.ID{})
		rs.Results[len(rs.Results)-1].Pieces = inN
	}

	envRep, eb, envOK := lookup("cluster.admin.env")
	for _, e := range ag.Env {
		test := "env " + e.Name
		if !envOK {
			add(e.Category, test, false, "no environment report collected", branch.ID{})
			continue
		}
		if !envRep.Succeeded() {
			add(e.Category, test, false, envRep.Footer.ErrorMessage, eb)
			continue
		}
		v, found := envRep.Body.Value("value,variable=" + e.Name + ",environment=default")
		switch {
		case !found:
			add(e.Category, test, false, "variable not set in default environment", eb)
		case e.Value != "" && v != e.Value:
			add(e.Category, test, false, fmt.Sprintf("value %q, agreement requires %q", v, e.Value), eb)
		default:
			add(e.Category, test, true, "", eb)
		}
	}

	seRep, sb, seOK := lookup("cluster.admin.softenv")
	for _, k := range ag.SoftEnv {
		test := "softenv " + k.Key
		if !seOK {
			add(k.Category, test, false, "no softenv report collected", branch.ID{})
			continue
		}
		if !seRep.Succeeded() {
			add(k.Category, test, false, seRep.Footer.ErrorMessage, sb)
			continue
		}
		if _, found := seRep.Body.Value("definition,entry=" + k.Key + ",softenv=database"); !found {
			add(k.Category, test, false, "key missing from SoftEnv database", sb)
		} else {
			add(k.Category, test, true, "", sb)
		}
	}

	return rs
}

// crossSiteOutbound: the resource reached at least one other resource's
// service. The third return is the number of reports examined.
func crossSiteOutbound(idx *indexed, service string) (bool, string, int) {
	attempts, successes := 0, 0
	var lastErr string
	for name, rep := range idx.reports {
		if !strings.Contains(name, "grid.xsite."+service+".to.") {
			continue
		}
		attempts++
		if rep.Succeeded() {
			successes++
		} else {
			lastErr = rep.Footer.ErrorMessage
		}
	}
	switch {
	case attempts == 0:
		return false, "no cross-site reports collected", 0
	case successes == 0:
		return false, fmt.Sprintf("all %d destinations unreachable; last error: %s", attempts, lastErr), attempts
	default:
		return true, "", attempts
	}
}

// crossSiteInbound: at least one other resource reached this resource's
// service. The third return is the number of reports examined.
func crossSiteInbound(all map[string]*indexed, res, service string) (bool, string, int) {
	attempts, successes := 0, 0
	var lastErr string
	want := "grid.xsite." + service + ".to." + res
	for other, idx := range all {
		if other == res {
			continue
		}
		for name, rep := range idx.reports {
			if name != want {
				continue
			}
			attempts++
			if rep.Succeeded() {
				successes++
			} else {
				lastErr = rep.Footer.ErrorMessage
			}
		}
	}
	switch {
	case attempts == 0:
		return false, "no other resource probes this service", 0
	case successes == 0:
		return false, fmt.Sprintf("no inbound access from %d probers; last error: %s", attempts, lastErr), attempts
	default:
		return true, "", attempts
	}
}
