package agreement

import (
	"reflect"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
)

// TestEvaluatorMatchesEvaluate: memoized evaluation must be observably
// identical to one-shot evaluation, cycle after cycle, through changes.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	populateCompliant(t, c, "r2", "ncsa")
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	fabricate(t, c, "other1", "anl", "grid.xsite.gram-gatekeeper.to.r2", okBody())

	ag := smallAgreement()
	ev := NewEvaluator(ag)
	compare := func(at time.Time) {
		t.Helper()
		oneShot, err := Evaluate(ag, c, at)
		if err != nil {
			t.Fatal(err)
		}
		memoized, err := ev.Evaluate(c, at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oneShot, memoized) {
			t.Fatalf("divergence at %v:\none-shot %+v\nmemoized %+v", at, oneShot, memoized)
		}
	}

	compare(t0)
	// Unchanged cache → second cycle reuses everything and still matches.
	compare(t0.Add(10 * time.Minute))
	if ev.MemoSize() == 0 {
		t.Fatal("memo empty after evaluations")
	}
	// A report changes (globus breaks on r1) → divergence must not appear.
	fabricate(t, c, "r1", "sdsc", "grid.unit.globus", failBody("went red"))
	compare(t0.Add(20 * time.Minute))
	// And recovers.
	fabricate(t, c, "r1", "sdsc", "grid.unit.globus", okBody())
	compare(t0.Add(30 * time.Minute))
}

func TestEvaluatorMemoEviction(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	ev := NewEvaluator(smallAgreement())
	if _, err := ev.Evaluate(c, t0); err != nil {
		t.Fatal(err)
	}
	before := ev.MemoSize()
	if before == 0 {
		t.Fatal("memo empty")
	}
	// Rebuild a smaller cache: evaluating it must evict stale entries.
	c2 := depot.NewStreamCache()
	fabricate(t, c2, "r1", "sdsc", "grid.version.globus", versionBody("globus", "2.4.3"))
	if _, err := ev.Evaluate(c2, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if ev.MemoSize() != 1 {
		t.Fatalf("memo = %d after eviction, want 1", ev.MemoSize())
	}
}

func TestEvaluatorSkipsForeignData(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	if _, err := c.Update(branch.MustParse("x=1,resource=r1,vo=tg"), []byte("<foreign/>")); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(smallAgreement())
	if _, err := ev.Evaluate(c, t0); err != nil {
		t.Fatal(err)
	}
	// Foreign entries are re-tried each cycle but never memoized as
	// reports; the evaluator must not crash or grow unboundedly.
	if _, err := ev.Evaluate(c, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}
