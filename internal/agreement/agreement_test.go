package agreement

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

var t0 = time.Date(2004, 7, 13, 10, 0, 0, 0, time.UTC)

// fabricate stores a reporter's output in the cache under the conventional
// branch layout.
func fabricate(t *testing.T, c depot.Cache, resource, site, reporterName string, build func(r *report.Report)) {
	t.Helper()
	r := report.New(reporterName, "1.0", resource, t0)
	build(r)
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse(fmt.Sprintf("reporter=%s,resource=%s,site=%s,vo=tg", reporterName, resource, site))
	if _, err := c.Update(id, data); err != nil {
		t.Fatal(err)
	}
}

func versionBody(pkg, version string) func(*report.Report) {
	return func(r *report.Report) {
		r.Body = report.Branch("package", pkg, report.Leaf("version", version))
	}
}

func okBody() func(*report.Report) {
	return func(r *report.Report) {
		r.Body = report.Branch("probe", "x", report.Leaf("ok", "1"))
	}
}

func failBody(msg string) func(*report.Report) {
	return func(r *report.Report) { r.Fail("%s", msg) }
}

func smallAgreement() *Agreement {
	return &Agreement{
		Name: "test-agreement",
		VO:   "tg",
		Packages: []PackageReq{
			{Name: "globus", Category: Grid, Version: Constraint{Op: ">=", Version: "2.4.0"}, UnitTest: true},
			{Name: "mpich", Category: Development, Version: Constraint{Op: "any"}},
		},
		Services: []ServiceReq{{Name: "gram-gatekeeper", Category: Grid, CrossSite: true}},
		Env:      []EnvReq{{Name: "GLOBUS_LOCATION", Value: "/usr/globus", Category: Cluster}},
		SoftEnv:  []SoftEnvReq{{Key: "@teragrid", Category: Cluster}},
	}
}

// populate fills the cache so resource r1 fully complies.
func populateCompliant(t *testing.T, c depot.Cache, res, site string) {
	fabricate(t, c, res, site, "grid.version.globus", versionBody("globus", "2.4.3"))
	fabricate(t, c, res, site, "grid.unit.globus", okBody())
	fabricate(t, c, res, site, "development.version.mpich", versionBody("mpich", "1.2.5"))
	fabricate(t, c, res, site, "grid.service.gram-gatekeeper", okBody())
	fabricate(t, c, res, site, "grid.xsite.gram-gatekeeper.to.other1", okBody())
	fabricate(t, c, res, site, "cluster.admin.env", func(r *report.Report) {
		r.Body = report.Branch("environment", "default",
			report.Branch("variable", "GLOBUS_LOCATION", report.Leaf("value", "/usr/globus")))
	})
	fabricate(t, c, res, site, "cluster.admin.softenv", func(r *report.Report) {
		r.Body = report.Branch("softenv", "database",
			report.Branch("entry", "@teragrid", report.Leaf("definition", "+globus")))
	})
}

func TestFullyCompliantResource(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	// Another resource probing r1 inbound.
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())

	status, err := Evaluate(smallAgreement(), c, t0)
	if err != nil {
		t.Fatal(err)
	}
	var r1 *ResourceStatus
	for _, rs := range status.Resources {
		if rs.Resource == "r1" {
			r1 = rs
		}
	}
	if r1 == nil {
		t.Fatal("r1 not discovered")
	}
	if fails := r1.Failures(); len(fails) != 0 {
		t.Fatalf("failures on compliant resource: %+v", fails)
	}
	total := r1.Total()
	// 2 version + 1 unit + 1 service + 2 cross-site + 1 env + 1 softenv = 8
	if total.Pass != 8 {
		t.Fatalf("pass = %d, want 8 (results: %+v)", total.Pass, r1.Results)
	}
	if r1.Site != "sdsc" {
		t.Fatalf("site = %q", r1.Site)
	}
}

func TestVersionConstraintViolation(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	// Downgrade globus below the constraint.
	fabricate(t, c, "r1", "sdsc", "grid.version.globus", versionBody("globus", "2.2.4"))

	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	fails := r1.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures = %+v", fails)
	}
	if !strings.Contains(fails[0].Detail, "2.2.4") {
		t.Fatalf("detail = %q", fails[0].Detail)
	}
	if fails[0].Category != Grid {
		t.Fatalf("category = %s", fails[0].Category)
	}
}

func TestMissingReportsFail(t *testing.T) {
	c := depot.NewStreamCache()
	// Only one report for r1; everything else missing.
	fabricate(t, c, "r1", "sdsc", "grid.version.globus", versionBody("globus", "2.4.3"))
	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	total := r1.Total()
	if total.Pass != 1 {
		t.Fatalf("pass = %d, want 1", total.Pass)
	}
	if total.Fail != 7 {
		t.Fatalf("fail = %d, want 7: %+v", total.Fail, r1.Results)
	}
}

func TestFailedUnitTestSurfacesMessage(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	fabricate(t, c, "r1", "sdsc", "grid.unit.globus", failBody("duroc mpi helloworld to jobmanager-pbs test failed"))
	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	fails := r1.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "duroc") {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestCrossSiteTwoWayMetric(t *testing.T) {
	// Outbound OK but nobody reaches r1 inbound → inbound fails.
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	var inbound *TestResult
	for i := range r1.Results {
		if strings.Contains(r1.Results[i].Test, "inbound") {
			inbound = &r1.Results[i]
		}
	}
	if inbound == nil || inbound.Pass {
		t.Fatalf("inbound = %+v", inbound)
	}

	// One prober failing, one succeeding → inbound passes (at least one).
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", failBody("timeout"))
	fabricate(t, c, "other2", "anl", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	status, _ = Evaluate(smallAgreement(), c, t0)
	r1 = findResource(t, status, "r1")
	for _, res := range r1.Results {
		if strings.Contains(res.Test, "inbound") && !res.Pass {
			t.Fatalf("inbound should pass with one successful prober: %+v", res)
		}
	}

	// All outbound destinations failing → outbound fails.
	fabricate(t, c, "r1", "sdsc", "grid.xsite.gram-gatekeeper.to.other1", failBody("unreachable"))
	status, _ = Evaluate(smallAgreement(), c, t0)
	r1 = findResource(t, status, "r1")
	for _, res := range r1.Results {
		if strings.Contains(res.Test, "outbound") && res.Pass {
			t.Fatalf("outbound should fail: %+v", res)
		}
	}
}

func TestStaleDataFails(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	ag := smallAgreement()
	ag.MaxAge = time.Hour
	// Evaluate far in the future: version/unit/service/env checks go stale.
	status, _ := Evaluate(ag, c, t0.Add(26*time.Hour))
	r1 := findResource(t, status, "r1")
	stale := 0
	for _, f := range r1.Failures() {
		if strings.Contains(f.Detail, "stale") {
			stale++
		}
	}
	if stale == 0 {
		t.Fatalf("no stale failures: %+v", r1.Results)
	}
}

func TestEnvValueMismatch(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	fabricate(t, c, "r1", "sdsc", "cluster.admin.env", func(r *report.Report) {
		r.Body = report.Branch("environment", "default",
			report.Branch("variable", "GLOBUS_LOCATION", report.Leaf("value", "/opt/other")))
	})
	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	fails := r1.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "/opt/other") {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestCategorySummaryPercent(t *testing.T) {
	s := CategorySummary{Category: Grid, Pass: 32, Fail: 1}
	if pct := s.Percent(); pct < 96 || pct > 97 {
		t.Fatalf("percent = %g", pct) // Figure 4 shows 96% for 32/1
	}
	empty := CategorySummary{Category: Cluster}
	if empty.Percent() != 100 || empty.Applicable() {
		t.Fatal("empty category should be 100%/n-a")
	}
}

func TestSummaryByCategory(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	fabricate(t, c, "other1", "ncsa", "grid.xsite.gram-gatekeeper.to.r1", okBody())
	status, _ := Evaluate(smallAgreement(), c, t0)
	r1 := findResource(t, status, "r1")
	sums := r1.Summary()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	byCat := map[Category]CategorySummary{}
	for _, s := range sums {
		byCat[s.Category] = s
	}
	// Grid: globus version + unit + service + 2 cross-site = 5.
	if byCat[Grid].Pass != 5 {
		t.Fatalf("Grid = %+v", byCat[Grid])
	}
	if byCat[Development].Pass != 1 {
		t.Fatalf("Development = %+v", byCat[Development])
	}
	if byCat[Cluster].Pass != 2 {
		t.Fatalf("Cluster = %+v", byCat[Cluster])
	}
}

func TestPiecesVerified(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	populateCompliant(t, c, "r2", "ncsa")
	status, _ := Evaluate(smallAgreement(), c, t0)
	if got := status.PiecesVerified(); got != 16 {
		t.Fatalf("pieces = %d, want 16", got)
	}
}

func TestEvaluateIgnoresForeignCacheData(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc")
	// Foreign XML under a resource branch must not break evaluation.
	if _, err := c.Update(branch.MustParse("x=1,resource=r1,vo=tg"), []byte("<foreign/>")); err != nil {
		t.Fatal(err)
	}
	// Data without a resource component is skipped.
	if _, err := c.Update(branch.MustParse("misc=1,vo=tg"), []byte("<foreign2/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(smallAgreement(), c, t0); err != nil {
		t.Fatal(err)
	}
}

func TestVOFiltering(t *testing.T) {
	c := depot.NewStreamCache()
	populateCompliant(t, c, "r1", "sdsc") // vo=tg
	// A resource in another VO must be invisible.
	r := report.New("grid.version.globus", "1.0", "alien", t0)
	r.Body = report.Branch("package", "globus", report.Leaf("version", "2.4.3"))
	data, _ := report.Marshal(r)
	if _, err := c.Update(branch.MustParse("reporter=grid.version.globus,resource=alien,site=x,vo=other"), data); err != nil {
		t.Fatal(err)
	}
	status, _ := Evaluate(smallAgreement(), c, t0)
	for _, rs := range status.Resources {
		if rs.Resource == "alien" {
			t.Fatal("resource from another VO evaluated")
		}
	}
}

func findResource(t *testing.T, status *VOStatus, name string) *ResourceStatus {
	t.Helper()
	for _, rs := range status.Resources {
		if rs.Resource == name {
			return rs
		}
	}
	t.Fatalf("resource %s not in status", name)
	return nil
}
