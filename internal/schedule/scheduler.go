package schedule

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"inca/internal/metrics"
	"inca/internal/simtime"
)

// Entry is one scheduled unit of work: a cron spec plus an action. Entries
// may declare dependencies on other entries by name — the paper's Section 6
// future-work item ("more advanced test scheduling, specifically allowing
// for dependencies"). When several entries fire at the same instant, an
// entry runs after its dependencies, and is skipped (with ErrDependency)
// when a dependency's most recent run this instant failed.
type Entry struct {
	Name      string
	Spec      *Spec
	DependsOn []string
	// Action performs the work. The scheduler records the returned error as
	// the entry's last result for dependency gating.
	Action func(now time.Time) error

	next     time.Time
	lastErr  error
	lastRun  time.Time
	runCount int
	missed   int // fire instants collapsed by clock jumps
}

// ErrDependency marks an execution skipped because a dependency failed at
// the same fire instant.
type ErrDependency struct {
	Entry string
	Dep   string
}

func (e ErrDependency) Error() string {
	return fmt.Sprintf("schedule: %s skipped: dependency %s failed", e.Entry, e.Dep)
}

// Scheduler runs entries against a Clock. All methods are safe for
// concurrent use.
type Scheduler struct {
	clock simtime.Clock

	mu      sync.Mutex
	entries map[string]*Entry
	running bool
	runs    int
	skips   int
	misses  int

	runsC   *metrics.Counter
	skipsC  *metrics.Counter
	missesC *metrics.Counter
}

// NewScheduler returns a scheduler driven by clock.
func NewScheduler(clock simtime.Clock) *Scheduler {
	return NewSchedulerMetrics(clock, nil)
}

// NewSchedulerMetrics is NewScheduler with scheduler instruments registered
// in reg (nil reg keeps them private): runs/skips/missed-fires counters
// plus entry-count and next-fire-lag gauges, sampled at scrape time. One
// scheduler per registry — a second registration keeps the first
// scheduler's gauges.
func NewSchedulerMetrics(clock simtime.Clock, reg *metrics.Registry) *Scheduler {
	s := &Scheduler{clock: clock, entries: make(map[string]*Entry)}
	s.runsC = reg.Counter("inca_scheduler_runs_total", "Scheduled actions executed.")
	s.skipsC = reg.Counter("inca_scheduler_skips_total", "Executions skipped because a same-instant dependency failed.")
	s.missesC = reg.Counter("inca_scheduler_missed_fires_total", "Fire instants collapsed into one run by clock jumps.")
	reg.GaugeFunc("inca_scheduler_entries", "Registered schedule entries.", func() float64 {
		return float64(s.Len())
	})
	reg.GaugeFunc("inca_scheduler_next_fire_lag_seconds", "Seconds the earliest pending entry is overdue (0 when on time).", func() float64 {
		next, ok := s.NextFire()
		if !ok {
			return 0
		}
		if lag := s.clock.Now().Sub(next).Seconds(); lag > 0 {
			return lag
		}
		return 0
	})
	return s
}

// Add registers an entry. Its first fire time is computed from the clock's
// current instant. Adding a duplicate name or an entry with unknown
// dependencies is an error.
func (s *Scheduler) Add(e *Entry) error {
	if e.Name == "" {
		return fmt.Errorf("schedule: entry with empty name")
	}
	if e.Spec == nil {
		return fmt.Errorf("schedule: entry %s has no cron spec", e.Name)
	}
	if e.Action == nil {
		return fmt.Errorf("schedule: entry %s has no action", e.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[e.Name]; dup {
		return fmt.Errorf("schedule: duplicate entry %s", e.Name)
	}
	for _, d := range e.DependsOn {
		if _, ok := s.entries[d]; !ok {
			return fmt.Errorf("schedule: entry %s depends on unknown entry %s", e.Name, d)
		}
	}
	e.next = e.Spec.Next(s.clock.Now())
	s.entries[e.Name] = e
	return nil
}

// Remove deletes an entry by name.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Len returns the number of registered entries.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats is a snapshot of scheduler activity.
type Stats struct {
	// Entries is the number of registered entries.
	Entries int
	// Runs is actions executed (dependency skips excluded).
	Runs int
	// Skips is executions withheld because a same-instant dependency
	// failed.
	Skips int
	// Misses is fire instants that elapsed during a clock jump and were
	// collapsed into a single run rather than executed individually.
	Misses int
}

// Stats returns a snapshot of scheduler activity.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Entries: len(s.entries), Runs: s.runs, Skips: s.skips, Misses: s.misses}
}

// MissedFires returns how many fire instants the named entry has had
// collapsed by clock jumps, and whether the entry exists.
func (s *Scheduler) MissedFires(name string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return 0, false
	}
	return e.missed, true
}

// NextFire returns the earliest pending fire time, or false when no entry
// can ever fire again.
func (s *Scheduler) NextFire() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFireLocked()
}

func (s *Scheduler) nextFireLocked() (time.Time, bool) {
	var earliest time.Time
	found := false
	for _, e := range s.entries {
		if e.next.IsZero() {
			continue
		}
		if !found || e.next.Before(earliest) {
			earliest = e.next
			found = true
		}
	}
	return earliest, found
}

// claim is one entry taken out of the pending set for execution, together
// with the instant it was scheduled for.
type claim struct {
	e      *Entry
	fireAt time.Time
}

// missedScanCap bounds the per-claim walk counting collapsed fire instants;
// a minutely entry jumped a year would otherwise iterate half a million
// times under the scheduler mutex. Past the cap the count is a floor and
// the entry reschedules from the current instant directly.
const missedScanCap = 1000

// due claims the entries firing at or before instant t and returns them
// ordered so that every entry follows its same-instant dependencies (and
// alphabetically within a rank, for determinism). Claiming — advancing
// e.next past t under the lock — is what makes concurrent RunPending
// callers fire each entry exactly once: an entry handed to one caller is no
// longer due for any other.
func (s *Scheduler) due(t time.Time) []claim {
	s.mu.Lock()
	defer s.mu.Unlock()
	var batch []claim
	inBatch := make(map[string]bool)
	for _, e := range s.entries {
		if e.next.IsZero() || e.next.After(t) {
			continue
		}
		c := claim{e: e, fireAt: e.next}
		// Claim the entry and account for fire instants the clock jumped
		// over: everything in (fireAt, t] runs as this one execution.
		missed := 0
		next := e.Spec.Next(c.fireAt)
		for !next.IsZero() && !next.After(t) {
			missed++
			if missed >= missedScanCap {
				next = e.Spec.Next(t)
				break
			}
			next = e.Spec.Next(next)
		}
		e.next = next
		e.missed += missed
		s.misses += missed
		if missed > 0 {
			s.missesC.Add(uint64(missed))
		}
		batch = append(batch, c)
		inBatch[e.Name] = true
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].e.Name < batch[j].e.Name })
	// Kahn's algorithm restricted to same-batch dependencies.
	var ordered []claim
	done := make(map[string]bool)
	for len(ordered) < len(batch) {
		progressed := false
		for _, c := range batch {
			if done[c.e.Name] {
				continue
			}
			ready := true
			for _, d := range c.e.DependsOn {
				if inBatch[d] && !done[d] {
					ready = false
					break
				}
			}
			if ready {
				ordered = append(ordered, c)
				done[c.e.Name] = true
				progressed = true
			}
		}
		if !progressed {
			// Dependency cycle within the batch: run remaining entries in
			// name order rather than dropping them.
			for _, c := range batch {
				if !done[c.e.Name] {
					ordered = append(ordered, c)
					done[c.e.Name] = true
				}
			}
		}
	}
	return ordered
}

// RunPending executes every entry due at or before the clock's current
// instant, honoring dependency order and gating, then reschedules each.
// It returns the number of entries that ran (skips excluded). Drivers of a
// simulated clock call this after each advance; Run calls it internally.
// Concurrent callers split the due set between them; each entry fires
// exactly once per instant.
func (s *Scheduler) RunPending() int {
	now := s.clock.Now()
	batch := s.due(now)
	ran := 0
	// batchErr records this batch's results so gating sees a dependency
	// that already ran a moment ago in this same call.
	batchErr := make(map[string]error, len(batch))
	for _, c := range batch {
		e := c.e
		skip := false
		var failedDep string
		s.mu.Lock()
		for _, d := range e.DependsOn {
			if err, ok := batchErr[d]; ok {
				if err != nil {
					skip = true
					failedDep = d
				}
				continue
			}
			// Outside the batch, only a failure at this same fire instant
			// gates: a dependency that failed at an earlier instant (or is
			// not due now at all) says nothing about this execution.
			if dep, ok := s.entries[d]; ok && dep.lastErr != nil && dep.lastRun.Equal(c.fireAt) {
				skip = true
				failedDep = d
			}
			if skip {
				break
			}
		}
		s.mu.Unlock()
		var err error
		if skip {
			err = ErrDependency{Entry: e.Name, Dep: failedDep}
		} else {
			err = e.Action(c.fireAt)
			ran++
		}
		batchErr[e.Name] = err
		s.mu.Lock()
		e.lastErr = err
		e.lastRun = c.fireAt
		e.runCount++
		if skip {
			s.skips++
		} else {
			s.runs++
		}
		s.mu.Unlock()
		if skip {
			s.skipsC.Inc()
		} else {
			s.runsC.Inc()
		}
	}
	return ran
}

// LastResult returns the most recent run time and error for an entry.
func (s *Scheduler) LastResult(name string) (time.Time, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return time.Time{}, nil, false
	}
	return e.lastRun, e.lastErr, true
}

// Run drives the scheduler until ctx is cancelled: sleep on the clock until
// the next fire time, execute pending entries, repeat. Run is the live
// (wall-clock) driver; simulation harnesses instead call NextFire /
// RunPending directly from a single goroutine, which is fully deterministic
// (see core.SimDeployment).
func (s *Scheduler) Run(ctx context.Context) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		next, ok := s.NextFire()
		if !ok {
			// Nothing schedulable; poll for new entries at a coarse period.
			select {
			case <-ctx.Done():
				return
			case <-s.clock.After(time.Minute):
			}
			continue
		}
		d := next.Sub(s.clock.Now())
		if d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-s.clock.After(d):
			}
		}
		s.RunPending()
	}
}
