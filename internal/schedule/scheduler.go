package schedule

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"inca/internal/simtime"
)

// Entry is one scheduled unit of work: a cron spec plus an action. Entries
// may declare dependencies on other entries by name — the paper's Section 6
// future-work item ("more advanced test scheduling, specifically allowing
// for dependencies"). When several entries fire at the same instant, an
// entry runs after its dependencies, and is skipped (with ErrDependency)
// when a dependency's most recent run this instant failed.
type Entry struct {
	Name      string
	Spec      *Spec
	DependsOn []string
	// Action performs the work. The scheduler records the returned error as
	// the entry's last result for dependency gating.
	Action func(now time.Time) error

	next     time.Time
	lastErr  error
	lastRun  time.Time
	runCount int
}

// ErrDependency marks an execution skipped because a dependency failed at
// the same fire instant.
type ErrDependency struct {
	Entry string
	Dep   string
}

func (e ErrDependency) Error() string {
	return fmt.Sprintf("schedule: %s skipped: dependency %s failed", e.Entry, e.Dep)
}

// Scheduler runs entries against a Clock. All methods are safe for
// concurrent use.
type Scheduler struct {
	clock simtime.Clock

	mu      sync.Mutex
	entries map[string]*Entry
	running bool
	runs    int
	skips   int
}

// NewScheduler returns a scheduler driven by clock.
func NewScheduler(clock simtime.Clock) *Scheduler {
	return &Scheduler{clock: clock, entries: make(map[string]*Entry)}
}

// Add registers an entry. Its first fire time is computed from the clock's
// current instant. Adding a duplicate name or an entry with unknown
// dependencies is an error.
func (s *Scheduler) Add(e *Entry) error {
	if e.Name == "" {
		return fmt.Errorf("schedule: entry with empty name")
	}
	if e.Spec == nil {
		return fmt.Errorf("schedule: entry %s has no cron spec", e.Name)
	}
	if e.Action == nil {
		return fmt.Errorf("schedule: entry %s has no action", e.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[e.Name]; dup {
		return fmt.Errorf("schedule: duplicate entry %s", e.Name)
	}
	for _, d := range e.DependsOn {
		if _, ok := s.entries[d]; !ok {
			return fmt.Errorf("schedule: entry %s depends on unknown entry %s", e.Name, d)
		}
	}
	e.next = e.Spec.Next(s.clock.Now())
	s.entries[e.Name] = e
	return nil
}

// Remove deletes an entry by name.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Len returns the number of registered entries.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the total number of runs and dependency skips so far.
func (s *Scheduler) Stats() (runs, skips int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.skips
}

// NextFire returns the earliest pending fire time, or false when no entry
// can ever fire again.
func (s *Scheduler) NextFire() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFireLocked()
}

func (s *Scheduler) nextFireLocked() (time.Time, bool) {
	var earliest time.Time
	found := false
	for _, e := range s.entries {
		if e.next.IsZero() {
			continue
		}
		if !found || e.next.Before(earliest) {
			earliest = e.next
			found = true
		}
	}
	return earliest, found
}

// due collects the entries firing at instant t, ordered so that every entry
// follows its same-instant dependencies (and alphabetically within a rank,
// for determinism).
func (s *Scheduler) due(t time.Time) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var batch []*Entry
	inBatch := make(map[string]bool)
	for _, e := range s.entries {
		if !e.next.IsZero() && !e.next.After(t) {
			batch = append(batch, e)
			inBatch[e.Name] = true
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Name < batch[j].Name })
	// Kahn's algorithm restricted to same-batch dependencies.
	var ordered []*Entry
	done := make(map[string]bool)
	for len(ordered) < len(batch) {
		progressed := false
		for _, e := range batch {
			if done[e.Name] {
				continue
			}
			ready := true
			for _, d := range e.DependsOn {
				if inBatch[d] && !done[d] {
					ready = false
					break
				}
			}
			if ready {
				ordered = append(ordered, e)
				done[e.Name] = true
				progressed = true
			}
		}
		if !progressed {
			// Dependency cycle within the batch: run remaining entries in
			// name order rather than dropping them.
			for _, e := range batch {
				if !done[e.Name] {
					ordered = append(ordered, e)
					done[e.Name] = true
				}
			}
		}
	}
	return ordered
}

// RunPending executes every entry due at or before the clock's current
// instant, honoring dependency order and gating, then reschedules each.
// It returns the number of entries that ran (skips excluded). Drivers of a
// simulated clock call this after each advance; Run calls it internally.
func (s *Scheduler) RunPending() int {
	now := s.clock.Now()
	batch := s.due(now)
	ran := 0
	for _, e := range batch {
		skip := false
		var failedDep string
		s.mu.Lock()
		for _, d := range e.DependsOn {
			if dep, ok := s.entries[d]; ok && dep.lastErr != nil {
				skip = true
				failedDep = d
				break
			}
		}
		s.mu.Unlock()
		fireAt := e.next
		var err error
		if skip {
			err = ErrDependency{Entry: e.Name, Dep: failedDep}
		} else {
			err = e.Action(fireAt)
			ran++
		}
		s.mu.Lock()
		e.lastErr = err
		e.lastRun = fireAt
		e.runCount++
		e.next = e.Spec.Next(now)
		if skip {
			s.skips++
		} else {
			s.runs++
		}
		s.mu.Unlock()
	}
	return ran
}

// LastResult returns the most recent run time and error for an entry.
func (s *Scheduler) LastResult(name string) (time.Time, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return time.Time{}, nil, false
	}
	return e.lastRun, e.lastErr, true
}

// Run drives the scheduler until ctx is cancelled: sleep on the clock until
// the next fire time, execute pending entries, repeat. Run is the live
// (wall-clock) driver; simulation harnesses instead call NextFire /
// RunPending directly from a single goroutine, which is fully deterministic
// (see core.SimDeployment).
func (s *Scheduler) Run(ctx context.Context) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		next, ok := s.NextFire()
		if !ok {
			// Nothing schedulable; poll for new entries at a coarse period.
			select {
			case <-ctx.Done():
				return
			case <-s.clock.After(time.Minute):
			}
			continue
		}
		d := next.Sub(s.clock.Now())
		if d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-s.clock.After(d):
			}
		}
		s.RunPending()
	}
}
