// Package schedule implements the distributed controller's execution
// scheduling (paper Section 3.1.3): classic five-field cron expressions, the
// randomized-offset placement of periodic reporters ("a reporter executed
// hourly can be randomly chosen to run at the 20th minute of each hour"),
// and a clock-driven scheduler with the dependency-aware extension the paper
// lists as future work (Section 6).
package schedule

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// fieldSet is a bitmask of allowed values for one cron field.
type fieldSet uint64

func (f fieldSet) has(v int) bool { return f&(1<<uint(v)) != 0 }

// Spec is a parsed cron expression. The zero value is invalid; construct
// with ParseCron or Every.
type Spec struct {
	min, hour, dom, month, dow fieldSet
	// domStar/dowStar record whether the field was written as "*", which
	// changes the day-matching rule: when both day fields are restricted,
	// standard cron matches their union, otherwise their intersection.
	domStar, dowStar bool
	source           string
}

// String returns the original cron expression.
func (s *Spec) String() string { return s.source }

type fieldDef struct {
	name     string
	min, max int
	names    map[string]int
}

var fieldDefs = [5]fieldDef{
	{name: "minute", min: 0, max: 59},
	{name: "hour", min: 0, max: 23},
	{name: "day-of-month", min: 1, max: 31},
	{name: "month", min: 1, max: 12, names: map[string]int{
		"jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
		"jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12}},
	{name: "day-of-week", min: 0, max: 7, names: map[string]int{
		"sun": 0, "mon": 1, "tue": 2, "wed": 3, "thu": 4, "fri": 5, "sat": 6}},
}

// ParseCron parses a five-field cron expression ("minute hour day-of-month
// month day-of-week"). Supported syntax: "*", single values, names (jan,
// mon, ...), ranges a-b, lists a,b,c, and steps */n or a-b/n. Day-of-week 7
// is an alias for Sunday.
func ParseCron(expr string) (*Spec, error) {
	fields := strings.Fields(expr)
	if len(fields) != 5 {
		return nil, fmt.Errorf("schedule: %q: want 5 fields, got %d", expr, len(fields))
	}
	var sets [5]fieldSet
	var stars [5]bool
	for i, f := range fields {
		set, star, err := parseField(f, fieldDefs[i])
		if err != nil {
			return nil, fmt.Errorf("schedule: %q: %s field: %w", expr, fieldDefs[i].name, err)
		}
		sets[i], stars[i] = set, star
	}
	s := &Spec{
		min: sets[0], hour: sets[1], dom: sets[2], month: sets[3], dow: sets[4],
		domStar: stars[2], dowStar: stars[4],
		source: strings.Join(fields, " "),
	}
	// Fold dow 7 onto 0.
	if s.dow.has(7) {
		s.dow |= 1 // Sunday
		s.dow &^= 1 << 7
	}
	return s, nil
}

// MustParseCron is ParseCron that panics on error.
func MustParseCron(expr string) *Spec {
	s, err := ParseCron(expr)
	if err != nil {
		panic(err)
	}
	return s
}

func parseField(f string, def fieldDef) (fieldSet, bool, error) {
	var set fieldSet
	star := false
	for _, part := range strings.Split(f, ",") {
		if part == "" {
			return 0, false, fmt.Errorf("empty list element in %q", f)
		}
		rangePart, step := part, 1
		if slash := strings.IndexByte(part, '/'); slash >= 0 {
			rangePart = part[:slash]
			n, err := strconv.Atoi(part[slash+1:])
			if err != nil || n <= 0 {
				return 0, false, fmt.Errorf("bad step in %q", part)
			}
			step = n
		}
		lo, hi := def.min, def.max
		switch {
		case rangePart == "*":
			// The star flag is per element, not per field: classic (Vixie)
			// cron treats a day field as "starred" whenever it begins with
			// "*", so "*/2" and "*,5" keep the intersection day rule just
			// like a bare "*". Checking len(f) == 1 here used to miss every
			// stepped or listed star.
			star = true
		case strings.Contains(rangePart, "-"):
			dash := strings.IndexByte(rangePart, '-')
			var err error
			if lo, err = parseValue(rangePart[:dash], def); err != nil {
				return 0, false, err
			}
			if hi, err = parseValue(rangePart[dash+1:], def); err != nil {
				return 0, false, err
			}
			if lo > hi {
				return 0, false, fmt.Errorf("inverted range %q", rangePart)
			}
		default:
			v, err := parseValue(rangePart, def)
			if err != nil {
				return 0, false, err
			}
			lo, hi = v, v
			if step != 1 {
				// "5/10" means 5 to max by 10 in classic cron.
				hi = def.max
			}
		}
		for v := lo; v <= hi; v += step {
			set |= 1 << uint(v)
		}
	}
	if set == 0 {
		return 0, false, fmt.Errorf("field %q selects nothing", f)
	}
	return set, star, nil
}

func parseValue(s string, def fieldDef) (int, error) {
	if def.names != nil {
		if v, ok := def.names[strings.ToLower(s)]; ok {
			return v, nil
		}
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	if v < def.min || v > def.max {
		return 0, fmt.Errorf("value %d out of range [%d,%d]", v, def.min, def.max)
	}
	return v, nil
}

// dayMatches applies the classic cron day rule: if both day-of-month and
// day-of-week are restricted, a date matches when either does; otherwise
// both (trivially, for the starred one) must match.
func (s *Spec) dayMatches(t time.Time) bool {
	domOK := s.dom.has(t.Day())
	dowOK := s.dow.has(int(t.Weekday()))
	if !s.domStar && !s.dowStar {
		return domOK || dowOK
	}
	return domOK && dowOK
}

// Next returns the first time strictly after t that matches the spec, in
// t's location. It searches up to five years ahead; beyond that it returns
// the zero time (the expression can never fire, e.g. Feb 30).
func (s *Spec) Next(t time.Time) time.Time {
	// Start at the next whole minute.
	t = t.Truncate(time.Minute).Add(time.Minute)
	limit := t.AddDate(5, 0, 0)
	for t.Before(limit) {
		if !s.month.has(int(t.Month())) {
			// Jump to the first instant of the next month.
			t = time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location()).AddDate(0, 1, 0)
			continue
		}
		if !s.dayMatches(t) {
			t = time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location()).AddDate(0, 0, 1)
			continue
		}
		if !s.hour.has(t.Hour()) {
			t = time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), 0, 0, 0, t.Location()).Add(time.Hour)
			continue
		}
		if !s.min.has(t.Minute()) {
			t = t.Add(time.Minute)
			continue
		}
		return t
	}
	return time.Time{}
}

// Matches reports whether the instant t (to minute precision) satisfies the
// spec.
func (s *Spec) Matches(t time.Time) bool {
	return s.min.has(t.Minute()) && s.hour.has(t.Hour()) &&
		s.month.has(int(t.Month())) && s.dayMatches(t)
}

// Every builds a cron spec that fires once per period at a random offset
// within the period, reproducing the distributed controller's load-spreading
// placement (Section 3.1.3). Supported periods: divisors of one hour in
// whole minutes, whole-hour periods dividing 24 hours, one day, and one
// week. rng supplies the offset; pass a seeded source for reproducible
// deployments.
func Every(period time.Duration, rng *rand.Rand) (*Spec, error) {
	minutes := int(period / time.Minute)
	if time.Duration(minutes)*time.Minute != period {
		return nil, fmt.Errorf("schedule: period %v not a whole number of minutes", period)
	}
	switch {
	case minutes <= 0:
		return nil, fmt.Errorf("schedule: non-positive period %v", period)
	case minutes < 60:
		if 60%minutes != 0 {
			return nil, fmt.Errorf("schedule: sub-hourly period %v must divide 60 minutes", period)
		}
		off := rng.Intn(minutes)
		if minutes == 1 {
			return ParseCron("* * * * *")
		}
		return ParseCron(fmt.Sprintf("%d-59/%d * * * *", off, minutes))
	case minutes == 60:
		return ParseCron(fmt.Sprintf("%d * * * *", rng.Intn(60)))
	case minutes%60 == 0 && minutes < 24*60:
		hours := minutes / 60
		if 24%hours != 0 {
			return nil, fmt.Errorf("schedule: multi-hour period %v must divide 24 hours", period)
		}
		m, h := rng.Intn(60), rng.Intn(hours)
		if hours == 1 {
			return ParseCron(fmt.Sprintf("%d * * * *", m))
		}
		return ParseCron(fmt.Sprintf("%d %d-23/%d * * *", m, h, hours))
	case minutes == 24*60:
		return ParseCron(fmt.Sprintf("%d %d * * *", rng.Intn(60), rng.Intn(24)))
	case minutes == 7*24*60:
		return ParseCron(fmt.Sprintf("%d %d * * %d", rng.Intn(60), rng.Intn(24), rng.Intn(7)))
	default:
		return nil, fmt.Errorf("schedule: unsupported period %v", period)
	}
}

// MustEvery is Every that panics on error.
func MustEvery(period time.Duration, rng *rand.Rand) *Spec {
	s, err := Every(period, rng)
	if err != nil {
		panic(err)
	}
	return s
}
