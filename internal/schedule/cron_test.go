package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// base is a Wednesday.
var base = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func TestParseCronFieldCount(t *testing.T) {
	for _, bad := range []string{"", "* * * *", "* * * * * *", "*"} {
		if _, err := ParseCron(bad); err == nil {
			t.Errorf("ParseCron(%q) accepted", bad)
		}
	}
}

func TestParseCronBadFields(t *testing.T) {
	cases := []string{
		"60 * * * *",   // minute out of range
		"* 24 * * *",   // hour out of range
		"* * 0 * *",    // dom out of range
		"* * * 13 *",   // month out of range
		"* * * * 8",    // dow out of range
		"a * * * *",    // garbage
		"1-0 * * * *",  // inverted range
		"*/0 * * * *",  // zero step
		"*/x * * * *",  // bad step
		"1,,2 * * * *", // empty list element
	}
	for _, c := range cases {
		if _, err := ParseCron(c); err == nil {
			t.Errorf("ParseCron(%q) accepted", c)
		}
	}
}

func TestNextSimpleMinute(t *testing.T) {
	s := MustParseCron("20 * * * *")
	got := s.Next(base)
	want := base.Add(20 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	// From 00:20 exactly, the next fire is 01:20 (strictly after).
	got = s.Next(want)
	if !got.Equal(want.Add(time.Hour)) {
		t.Fatalf("Next from fire time = %v", got)
	}
}

func TestNextStepField(t *testing.T) {
	s := MustParseCron("5-59/10 * * * *")
	times := []time.Time{s.Next(base)}
	for i := 0; i < 6; i++ {
		times = append(times, s.Next(times[len(times)-1]))
	}
	wantMinutes := []int{5, 15, 25, 35, 45, 55, 5}
	for i, w := range wantMinutes {
		if times[i].Minute() != w {
			t.Fatalf("fire %d at minute %d, want %d", i, times[i].Minute(), w)
		}
	}
	if times[6].Hour() != 1 {
		t.Fatalf("wrap to next hour failed: %v", times[6])
	}
}

func TestNextHourlyList(t *testing.T) {
	s := MustParseCron("0 6,18 * * *")
	got := s.Next(base)
	if got.Hour() != 6 || got.Minute() != 0 {
		t.Fatalf("Next = %v", got)
	}
	got = s.Next(got)
	if got.Hour() != 18 {
		t.Fatalf("second fire = %v", got)
	}
}

func TestNextMonthNames(t *testing.T) {
	s := MustParseCron("0 0 1 sep *")
	got := s.Next(base)
	want := time.Date(2004, 9, 1, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
}

func TestNextDowNames(t *testing.T) {
	s := MustParseCron("30 4 * * mon")
	got := s.Next(base) // base is Wed Jul 7
	want := time.Date(2004, 7, 12, 4, 30, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("Next = %v, want %v (a Monday)", got, want)
	}
	if got.Weekday() != time.Monday {
		t.Fatalf("fired on %v", got.Weekday())
	}
}

func TestDow7IsSunday(t *testing.T) {
	s7 := MustParseCron("0 0 * * 7")
	s0 := MustParseCron("0 0 * * 0")
	if !s7.Next(base).Equal(s0.Next(base)) {
		t.Fatalf("dow 7 (%v) != dow 0 (%v)", s7.Next(base), s0.Next(base))
	}
	if s7.Next(base).Weekday() != time.Sunday {
		t.Fatalf("dow 7 fired on %v", s7.Next(base).Weekday())
	}
}

func TestDomDowUnionRule(t *testing.T) {
	// Both restricted: classic cron fires on the 15th OR on Fridays.
	s := MustParseCron("0 0 15 * fri")
	got := s.Next(base) // Wed Jul 7 → Fri Jul 9 (dow match before dom 15)
	if got.Day() != 9 || got.Weekday() != time.Friday {
		t.Fatalf("first = %v", got)
	}
	got = s.Next(got) // → Thu Jul 15 (dom match)
	if got.Day() != 15 {
		t.Fatalf("second = %v", got)
	}
}

func TestDomDowIntersectionWhenOneStarred(t *testing.T) {
	// Only dow restricted: fires every Friday regardless of dom.
	s := MustParseCron("0 0 * * fri")
	got := s.Next(base)
	if got.Weekday() != time.Friday || got.Day() != 9 {
		t.Fatalf("Next = %v", got)
	}
}

func TestNextImpossibleSpecReturnsZero(t *testing.T) {
	s := MustParseCron("0 0 31 feb *")
	if got := s.Next(base); !got.IsZero() {
		t.Fatalf("impossible spec fired at %v", got)
	}
}

func TestNextFeb29(t *testing.T) {
	s := MustParseCron("0 0 29 feb *")
	got := s.Next(base)
	want := time.Date(2008, 2, 29, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
}

func TestMatchesAgreesWithNextProperty(t *testing.T) {
	specs := []*Spec{
		MustParseCron("20 * * * *"),
		MustParseCron("5-59/10 * * * *"),
		MustParseCron("0 */4 * * *"),
		MustParseCron("15 3 * * mon"),
		MustParseCron("0 0 1,15 * *"),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := specs[r.Intn(len(specs))]
		start := base.Add(time.Duration(r.Intn(100000)) * time.Minute)
		n := s.Next(start)
		if n.IsZero() {
			return false
		}
		if !n.After(start) {
			return false
		}
		if !s.Matches(n) {
			return false
		}
		// No matching instant may exist strictly between start+1min and n.
		probe := start.Truncate(time.Minute).Add(time.Minute)
		for probe.Before(n) {
			if s.Matches(probe) {
				return false
			}
			probe = probe.Add(time.Minute)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryRandomOffsetWithinPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, period := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute,
		30 * time.Minute, time.Hour, 4 * time.Hour, 24 * time.Hour, 7 * 24 * time.Hour} {
		s, err := Every(period, rng)
		if err != nil {
			t.Fatalf("Every(%v): %v", period, err)
		}
		// Consecutive fires must be exactly one period apart.
		t1 := s.Next(base)
		t2 := s.Next(t1)
		if got := t2.Sub(t1); got != period {
			t.Fatalf("Every(%v): consecutive fires %v apart (%v then %v)", period, got, t1, t2)
		}
		// First fire lands within one period of the start.
		if t1.Sub(base) > period {
			t.Fatalf("Every(%v): first fire %v more than a period after start", period, t1)
		}
	}
}

func TestEveryRandomizesPlacement(t *testing.T) {
	// Across many seeds the hourly offsets should spread out (the paper's
	// reason for randomization: distributing reporter impact).
	minutes := make(map[int]bool)
	for seed := int64(0); seed < 40; seed++ {
		s := MustEvery(time.Hour, rand.New(rand.NewSource(seed)))
		minutes[s.Next(base).Minute()] = true
	}
	if len(minutes) < 10 {
		t.Fatalf("only %d distinct offsets across 40 seeds", len(minutes))
	}
}

func TestEveryRejectsBadPeriods(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []time.Duration{0, -time.Hour, 7 * time.Minute, 90 * time.Minute,
		5 * time.Hour, 48 * time.Hour, 30 * time.Second} {
		if _, err := Every(p, rng); err == nil {
			t.Errorf("Every(%v) accepted", p)
		}
	}
}

func TestSpecString(t *testing.T) {
	s := MustParseCron("20  *  * * *")
	if s.String() != "20 * * * *" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSingleValueWithStep(t *testing.T) {
	// "5/10" in the hour field: 5,15 (classic cron extends to max).
	s := MustParseCron("0 5/10 * * *")
	t1 := s.Next(base)
	t2 := s.Next(t1)
	if t1.Hour() != 5 || t2.Hour() != 15 {
		t.Fatalf("fires at hours %d,%d; want 5,15", t1.Hour(), t2.Hour())
	}
}

func TestDowNameRange(t *testing.T) {
	s := MustParseCron("0 9 * * mon-fri")
	fire := s.Next(base) // base is Wed Jul 7
	if fire.Weekday() != time.Wednesday || fire.Hour() != 9 {
		t.Fatalf("first fire = %v", fire)
	}
	// From Friday 09:00, next is Monday.
	friday := time.Date(2004, 7, 9, 9, 0, 0, 0, time.UTC)
	next := s.Next(friday)
	if next.Weekday() != time.Monday {
		t.Fatalf("weekend not skipped: %v (%v)", next, next.Weekday())
	}
}

func TestMonthNameRangeWithStep(t *testing.T) {
	s := MustParseCron("0 0 1 jan-dec/3 *")
	fire := s.Next(base) // Jul 7 → Oct 1 (months 1,4,7,10; Jul 1 already past)
	want := time.Date(2004, 10, 1, 0, 0, 0, 0, time.UTC)
	if !fire.Equal(want) {
		t.Fatalf("fire = %v, want %v", fire, want)
	}
}

func TestStarWithStepSetsDayStarRule(t *testing.T) {
	// Classic (Vixie) cron: a day field counts as "starred" whenever it
	// begins with "*", including "*/n" and "*,x" — only then does the other
	// day field restrict alone (intersection). These diverge from the
	// pre-fix behavior, which treated any multi-character field as
	// restricted and applied the union rule.
	cases := []struct {
		expr string
		want time.Time // first fire strictly after base (Wed Jul 7 2004)
	}{
		// dom "*/2" starred → fire on Mondays whose dom is odd:
		// Jul 12 is even, Jul 19 is the first odd Monday.
		{"0 0 */2 * 1", time.Date(2004, 7, 19, 0, 0, 0, 0, time.UTC)},
		// dom "*,15" starred (list containing a star) → Mondays only.
		{"0 0 *,15 * 1", time.Date(2004, 7, 12, 0, 0, 0, 0, time.UTC)},
		// dow "*/2" starred → dom 15 must also hold: Jul 15 (a Thursday,
		// dow 4 ∈ {0,2,4,6}), not Jul 8 as the union rule would give.
		{"0 0 15 * */2", time.Date(2004, 7, 15, 0, 0, 0, 0, time.UTC)},
		// An explicit range with a step is NOT starred: union rule stays,
		// so the first odd dom (Fri Jul 9) fires even though it is no
		// Monday.
		{"0 0 1-31/2 * 1", time.Date(2004, 7, 9, 0, 0, 0, 0, time.UTC)},
	}
	for _, tc := range cases {
		s := MustParseCron(tc.expr)
		if got := s.Next(base); !got.Equal(tc.want) {
			t.Errorf("%q: Next = %v, want %v", tc.expr, got, tc.want)
		}
		if !s.Matches(tc.want) {
			t.Errorf("%q: Matches(%v) = false", tc.expr, tc.want)
		}
	}
}

func TestStarStepFlagParsing(t *testing.T) {
	for expr, want := range map[string][2]bool{
		"0 0 * * *":      {true, true},
		"0 0 */2 * *":    {true, true},
		"0 0 * * */2":    {true, true},
		"0 0 *,5 * 1":    {true, false},
		"0 0 1-31/2 * *": {false, true},
		"0 0 15 * 1":     {false, false},
	} {
		s := MustParseCron(expr)
		if s.domStar != want[0] || s.dowStar != want[1] {
			t.Errorf("%q: domStar,dowStar = %v,%v, want %v,%v",
				expr, s.domStar, s.dowStar, want[0], want[1])
		}
	}
}
