package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inca/internal/metrics"
	"inca/internal/simtime"
)

func newTestScheduler() (*Scheduler, *simtime.Sim) {
	sim := simtime.NewSim(base)
	return NewScheduler(sim), sim
}

// drive advances the sim clock fire-by-fire until target, running pending
// entries — the same loop the experiment harness uses.
func drive(s *Scheduler, sim *simtime.Sim, target time.Time) {
	for {
		next, ok := s.NextFire()
		if !ok || next.After(target) {
			sim.AdvanceTo(target)
			return
		}
		sim.AdvanceTo(next)
		s.RunPending()
	}
}

func TestAddValidation(t *testing.T) {
	s, _ := newTestScheduler()
	spec := MustParseCron("* * * * *")
	noop := func(time.Time) error { return nil }
	if err := s.Add(&Entry{Spec: spec, Action: noop}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Add(&Entry{Name: "a", Action: noop}); err == nil {
		t.Fatal("nil spec accepted")
	}
	if err := s.Add(&Entry{Name: "a", Spec: spec}); err == nil {
		t.Fatal("nil action accepted")
	}
	if err := s.Add(&Entry{Name: "a", Spec: spec, Action: noop}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Entry{Name: "a", Spec: spec, Action: noop}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.Add(&Entry{Name: "b", Spec: spec, Action: noop, DependsOn: []string{"ghost"}}); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestHourlyEntryFiresOncePerHour(t *testing.T) {
	s, sim := newTestScheduler()
	var fires []time.Time
	err := s.Add(&Entry{
		Name: "hourly",
		Spec: MustParseCron("20 * * * *"),
		Action: func(now time.Time) error {
			fires = append(fires, now)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(5*time.Hour))
	if len(fires) != 5 {
		t.Fatalf("fired %d times, want 5", len(fires))
	}
	for i, f := range fires {
		if f.Minute() != 20 {
			t.Fatalf("fire %d at minute %d", i, f.Minute())
		}
	}
}

func TestMultipleEntriesInterleave(t *testing.T) {
	s, sim := newTestScheduler()
	counts := map[string]int{}
	for name, expr := range map[string]string{
		"tenmin": "0-59/10 * * * *",
		"hourly": "30 * * * *",
	} {
		name := name
		if err := s.Add(&Entry{Name: name, Spec: MustParseCron(expr),
			Action: func(time.Time) error { counts[name]++; return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	drive(s, sim, base.Add(2*time.Hour))
	if counts["tenmin"] != 12 {
		t.Fatalf("tenmin ran %d times, want 12", counts["tenmin"])
	}
	if counts["hourly"] != 2 {
		t.Fatalf("hourly ran %d times, want 2", counts["hourly"])
	}
	st := s.Stats()
	if st.Runs != 14 || st.Skips != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDependencyOrderingSameInstant(t *testing.T) {
	s, sim := newTestScheduler()
	var order []string
	mk := func(name string, deps ...string) *Entry {
		return &Entry{
			Name: name, Spec: MustParseCron("0 * * * *"), DependsOn: deps,
			Action: func(time.Time) error { order = append(order, name); return nil },
		}
	}
	// Alphabetical order alone would run a-check before z-setup; the
	// dependency must override it.
	if err := s.Add(mk("z-setup")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mk("a-check", "z-setup")); err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(time.Hour+time.Minute))
	if len(order) != 2 || order[0] != "z-setup" || order[1] != "a-check" {
		t.Fatalf("order = %v", order)
	}
}

func TestDependencySkipOnFailure(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	var ran []string
	if err := s.Add(&Entry{Name: "setup", Spec: MustParseCron("0 * * * *"),
		Action: func(time.Time) error { return errors.New("boom") }}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Entry{Name: "test", Spec: MustParseCron("0 * * * *"), DependsOn: []string{"setup"},
		Action: func(time.Time) error { ran = append(ran, "test"); return nil }}); err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(time.Hour+time.Minute))
	if len(ran) != 0 {
		t.Fatalf("dependent ran despite failed dependency: %v", ran)
	}
	if skips := s.Stats().Skips; skips != 1 {
		t.Fatalf("skips = %d, want 1", skips)
	}
	_, lastErr, ok := s.LastResult("test")
	if !ok {
		t.Fatal("no result recorded")
	}
	var dep ErrDependency
	if !errors.As(lastErr, &dep) || dep.Dep != "setup" {
		t.Fatalf("lastErr = %v", lastErr)
	}
}

func TestDependencyRecovers(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	fail := true
	var ran int
	if err := s.Add(&Entry{Name: "setup", Spec: MustParseCron("0 * * * *"),
		Action: func(time.Time) error {
			if fail {
				return errors.New("down")
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Entry{Name: "probe", Spec: MustParseCron("0 * * * *"), DependsOn: []string{"setup"},
		Action: func(time.Time) error { ran++; return nil }}); err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(time.Hour+time.Minute)) // hour 1: setup fails, probe skipped
	fail = false
	drive(s, sim, base.Add(2*time.Hour+time.Minute)) // hour 2: both run
	if ran != 1 {
		t.Fatalf("probe ran %d times, want 1", ran)
	}
}

func TestDependencyCycleStillRuns(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	var ran []string
	spec := MustParseCron("0 * * * *")
	if err := s.Add(&Entry{Name: "a", Spec: spec,
		Action: func(time.Time) error { ran = append(ran, "a"); return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Entry{Name: "b", Spec: spec, DependsOn: []string{"a"},
		Action: func(time.Time) error { ran = append(ran, "b"); return nil }}); err != nil {
		t.Fatal(err)
	}
	// Close the cycle after registration (Add validates forward refs only).
	s.mu.Lock()
	s.entries["a"].DependsOn = []string{"b"}
	s.mu.Unlock()
	drive(s, sim, base.Add(time.Hour+time.Minute))
	if len(ran) != 2 {
		t.Fatalf("cycle dropped entries: %v", ran)
	}
}

func TestRemove(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	n := 0
	if err := s.Add(&Entry{Name: "x", Spec: MustParseCron("* * * * *"),
		Action: func(time.Time) error { n++; return nil }}); err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(2*time.Minute))
	s.Remove("x")
	drive(s, sim, base.Add(10*time.Minute))
	if n != 2 {
		t.Fatalf("ran %d times, want 2 (before removal)", n)
	}
	if _, ok := s.NextFire(); ok {
		t.Fatal("NextFire reports work after removal")
	}
}

func TestRunLiveClockCancellation(t *testing.T) {
	// With a real clock and a 1-minute spec nothing fires quickly; Run must
	// exit promptly on cancellation while blocked.
	s := NewScheduler(simtime.Real{})
	if err := s.Add(&Entry{Name: "x", Spec: MustParseCron("* * * * *"),
		Action: func(time.Time) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit on cancellation")
	}
}

func TestManyEntriesDeterministicOrder(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	var order []string
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("e%02d", i)
		if err := s.Add(&Entry{Name: name, Spec: MustParseCron("0 * * * *"),
			Action: func(time.Time) error { order = append(order, name); return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	drive(s, sim, base.Add(time.Hour+time.Minute))
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("same-instant batch not name-ordered: %v", order)
		}
	}
}

func TestStaleDependencyDoesNotSkip(t *testing.T) {
	// A dependency that failed at an EARLIER fire instant must not gate an
	// execution where it is not even due: gating is per-instant, not
	// per-latest-error.
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	if err := s.Add(&Entry{Name: "setup", Spec: MustParseCron("0 * * * *"),
		Action: func(time.Time) error { return errors.New("down") }}); err != nil {
		t.Fatal(err)
	}
	var probeRuns []time.Time
	if err := s.Add(&Entry{Name: "probe", Spec: MustParseCron("0,30 * * * *"), DependsOn: []string{"setup"},
		Action: func(now time.Time) error { probeRuns = append(probeRuns, now); return nil }}); err != nil {
		t.Fatal(err)
	}
	// 00:30 probe alone (setup never ran) → runs. 01:00 both fire, setup
	// fails → probe skipped. 01:30 probe alone; setup's failure is stale
	// (01:00 ≠ 01:30) → probe must run.
	drive(s, sim, base.Add(90*time.Minute+time.Second))
	want := []time.Time{base.Add(30 * time.Minute), base.Add(90 * time.Minute)}
	if len(probeRuns) != 2 || !probeRuns[0].Equal(want[0]) || !probeRuns[1].Equal(want[1]) {
		t.Fatalf("probe ran at %v, want %v", probeRuns, want)
	}
	if st := s.Stats(); st.Skips != 1 {
		t.Fatalf("Stats = %+v, want exactly 1 skip (at 01:00)", st)
	}
}

func TestConcurrentRunPendingExactlyOnce(t *testing.T) {
	// The type promises "safe for concurrent use": two drivers calling
	// RunPending at the same instant must fire each entry exactly once.
	// Run under -race.
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	const entries = 5
	counts := make([]int64, entries)
	for i := 0; i < entries; i++ {
		i := i
		if err := s.Add(&Entry{Name: fmt.Sprintf("e%d", i), Spec: MustParseCron("* * * * *"),
			Action: func(time.Time) error { atomic.AddInt64(&counts[i], 1); return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	const instants = 20
	for tick := 0; tick < instants; tick++ {
		sim.AdvanceTo(base.Add(time.Duration(tick+1) * time.Minute))
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.RunPending()
			}()
		}
		wg.Wait()
	}
	for i, c := range counts {
		if c != instants {
			t.Errorf("entry %d fired %d times, want %d (exactly once per instant)", i, c, instants)
		}
	}
	if st := s.Stats(); st.Runs != entries*instants {
		t.Fatalf("Stats.Runs = %d, want %d", st.Runs, entries*instants)
	}
}

func TestMissedFireAccounting(t *testing.T) {
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	var fires []time.Time
	if err := s.Add(&Entry{Name: "x", Spec: MustParseCron("* * * * *"),
		Action: func(now time.Time) error { fires = append(fires, now); return nil }}); err != nil {
		t.Fatal(err)
	}
	// Jump the clock 10 minutes: the 00:01 fire runs, 00:02–00:10 are
	// missed, and the entry reschedules at 00:11.
	sim.AdvanceTo(base.Add(10 * time.Minute))
	if ran := s.RunPending(); ran != 1 {
		t.Fatalf("RunPending ran %d entries, want 1", ran)
	}
	if len(fires) != 1 || !fires[0].Equal(base.Add(time.Minute)) {
		t.Fatalf("fired at %v, want [%v]", fires, base.Add(time.Minute))
	}
	st := s.Stats()
	if st.Runs != 1 || st.Misses != 9 {
		t.Fatalf("Stats = %+v, want Runs 1 Misses 9", st)
	}
	if m, ok := s.MissedFires("x"); !ok || m != 9 {
		t.Fatalf("MissedFires = %d,%v, want 9,true", m, ok)
	}
	next, ok := s.NextFire()
	if !ok || !next.Equal(base.Add(11*time.Minute)) {
		t.Fatalf("NextFire = %v,%v, want %v", next, ok, base.Add(11*time.Minute))
	}
}

func TestMissedFireScanCapped(t *testing.T) {
	// A minutely entry jumped a whole year would need ~525600 Spec.Next
	// walks; the scan stops at missedScanCap (a floor, not an exact count)
	// and reschedules from the current instant.
	sim := simtime.NewSim(base)
	s := NewScheduler(sim)
	ran := 0
	if err := s.Add(&Entry{Name: "x", Spec: MustParseCron("* * * * *"),
		Action: func(time.Time) error { ran++; return nil }}); err != nil {
		t.Fatal(err)
	}
	now := base.AddDate(1, 0, 0)
	sim.AdvanceTo(now)
	s.RunPending()
	if ran != 1 {
		t.Fatalf("ran %d times, want 1", ran)
	}
	if st := s.Stats(); st.Misses != missedScanCap {
		t.Fatalf("Misses = %d, want the cap %d", st.Misses, missedScanCap)
	}
	next, ok := s.NextFire()
	if !ok || !next.Equal(now.Add(time.Minute)) {
		t.Fatalf("NextFire = %v,%v, want %v", next, ok, now.Add(time.Minute))
	}
}

func TestSchedulerMetrics(t *testing.T) {
	sim := simtime.NewSim(base)
	reg := metrics.NewRegistry()
	s := NewSchedulerMetrics(sim, reg)
	if err := s.Add(&Entry{Name: "setup", Spec: MustParseCron("0 * * * *"),
		Action: func(time.Time) error { return errors.New("down") }}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Entry{Name: "probe", Spec: MustParseCron("0 * * * *"), DependsOn: []string{"setup"},
		Action: func(time.Time) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	drive(s, sim, base.Add(time.Hour+time.Minute))
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"inca_scheduler_runs_total 1\n",
		"inca_scheduler_skips_total 1\n",
		"inca_scheduler_missed_fires_total 0\n",
		"inca_scheduler_entries 2\n",
		"inca_scheduler_next_fire_lag_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := metrics.Lint(text); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}
