package envelope

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"inca/internal/branch"
)

var testID = branch.MustParse("dest=siteB,tool=pathload,site=siteA,vo=tg")

func TestRoundTripBothModes(t *testing.T) {
	payload := []byte(`<incaReport><header/><body><m><ID>x</ID><v>1 &lt; 2</v></m></body><footer/></incaReport>`)
	for _, mode := range []Mode{Body, Attachment} {
		data, err := Encode(mode, testID, payload)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		env, err := Decode(data)
		if err != nil {
			t.Fatalf("%s decode: %v", mode, err)
		}
		if env.Mode != mode {
			t.Fatalf("mode = %v, want %v", env.Mode, mode)
		}
		if !env.Branch.Equal(testID) {
			t.Fatalf("%s: branch = %s", mode, env.Branch)
		}
		if !bytes.Equal(env.Report, payload) {
			t.Fatalf("%s: payload mismatch:\n got %s\nwant %s", mode, env.Report, payload)
		}
	}
}

func TestBodyModeEscapesPayload(t *testing.T) {
	payload := []byte("<a><b>text</b></a>")
	data, err := Encode(Body, testID, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("<a>")) {
		t.Fatalf("body mode left raw markup: %s", data)
	}
	if !bytes.Contains(data, []byte("&lt;a&gt;")) {
		t.Fatalf("body mode did not escape: %s", data)
	}
}

func TestAttachmentModeKeepsPayloadRaw(t *testing.T) {
	payload := []byte("<a><b>text</b></a>")
	data, err := Encode(Attachment, testID, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, payload) {
		t.Fatalf("attachment payload not raw at tail: %s", data)
	}
	// Attachment envelopes are much smaller than body envelopes for large
	// payloads — the point of the paper's planned improvement.
	big := bytes.Repeat([]byte("<x>&amp;</x>"), 2000)
	bodyData, _ := Encode(Body, testID, big)
	attData, _ := Encode(Attachment, testID, big)
	if len(attData) >= len(bodyData) {
		t.Fatalf("attachment (%d) not smaller than body (%d)", len(attData), len(bodyData))
	}
}

func TestBinarySafePayloadInAttachment(t *testing.T) {
	// Attachment mode must carry any bytes, even invalid XML fragments
	// inside (the depot validates later, not the transport).
	payload := []byte("<r>\x09tab and \xc3\xa9 accents</r>")
	data, err := Encode(Attachment, testID, payload)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Report, payload) {
		t.Fatal("payload mangled")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"<wrong/>",
		`<envelope mode="body"><address>a=1</address></envelope>`,                                             // no report
		`<envelope mode="attachment"><address>a=1</address></envelope>`,                                       // no attachment element
		`<envelope mode="body"><address>not-a-branch</address><report>x</report></envelope>`,                  // bad address
		`<envelope mode="attachment"><address>a=1</address><attachment length="bad"/></envelope>`,             // bad length
		`<envelope mode="attachment"><address>a=1</address><attachment length="100"/></envelope>` + "\nshort", // truncated
		`<envelope mode="body"><address>a=1</address><attachment length="1"/></envelope>x`,                    // wrong element for mode
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("Decode accepted %q", c)
		}
	}
}

func TestRootBranchAllowed(t *testing.T) {
	data, err := Encode(Body, branch.ID{}, []byte("<r/>"))
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Branch.IsRoot() {
		t.Fatalf("branch = %q", env.Branch)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, useAttachment bool) bool {
		r := rand.New(rand.NewSource(seed))
		payload := []byte("<r>" + randomText(r) + "</r>")
		mode := Body
		if useAttachment {
			mode = Attachment
		}
		data, err := Encode(mode, testID, payload)
		if err != nil {
			return false
		}
		env, err := Decode(data)
		if err != nil {
			return false
		}
		return bytes.Equal(env.Report, payload) && env.Branch.Equal(testID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomText(r *rand.Rand) string {
	const alpha = "abc <>&\"'123\n\t"
	n := r.Intn(200)
	b := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		ch := alpha[r.Intn(len(alpha))]
		switch ch {
		case '<':
			b = append(b, []byte("&lt;")...)
		case '>':
			b = append(b, []byte("&gt;")...)
		case '&':
			b = append(b, []byte("&amp;")...)
		default:
			b = append(b, ch)
		}
	}
	return string(b)
}

func TestModeString(t *testing.T) {
	if Body.String() != "body" || Attachment.String() != "attachment" {
		t.Fatal("mode names wrong")
	}
}

func TestUnknownModeRejected(t *testing.T) {
	if _, err := Encode(Mode(9), testID, []byte("<r/>")); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestAddressPeek(t *testing.T) {
	payload := []byte("<r><v>1</v></r>")
	for _, mode := range []Mode{Body, Attachment} {
		data, err := Encode(mode, testID, payload)
		if err != nil {
			t.Fatal(err)
		}
		id, err := Address(data)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !id.Equal(testID) {
			t.Fatalf("%s: id = %s", mode, id)
		}
	}
}

func TestAddressErrors(t *testing.T) {
	cases := []string{
		"",
		"<wrong/>",
		"<envelope></envelope>", // no address
		"<envelope><address>not!branch</address></envelope>", // bad id
		"<envelope><other/>", // truncated
	}
	for _, c := range cases {
		if _, err := Address([]byte(c)); err == nil {
			t.Errorf("Address accepted %q", c)
		}
	}
}

func TestAddressRootID(t *testing.T) {
	data, err := Encode(Body, branch.ID{}, []byte("<r/>"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := Address(data)
	if err != nil || !id.IsRoot() {
		t.Fatalf("root address: %v %v", id, err)
	}
}
