package envelope

import (
	"bytes"
	"strconv"
	"sync"
	"unicode/utf8"

	"inca/internal/branch"
)

// This file is the pooled byte-level codec behind Encode/Decode. The
// encoder's escaper reproduces encoding/xml.EscapeText byte for byte (the
// cache depends on canonical documents), but appends into a preallocated
// slice instead of driving an io.Writer rune by rune. The decoder
// recognizes the exact layout Encode emits and unescapes with one scan
// through a sync.Pool scratch buffer; any other envelope shape falls back
// to the generic XML decoder, so foreign or hand-written envelopes keep
// working.

// escapedLen prices appendEscaped's output without writing it, so the
// encoder can allocate the result exactly once.
func escapedLen(s []byte) int {
	n := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRune(s[i:])
		i += width
		switch r {
		case '"', '\'':
			n += 5 // &#34; &#39;
		case '&':
			n += 5 // &amp;
		case '<', '>':
			n += 4 // &lt; &gt;
		case '\t', '\n', '\r':
			n += 5 // &#x9; &#xA; &#xD;
		default:
			if !xmlCharOK(r) || (r == utf8.RuneError && width == 1) {
				n += len("�")
			} else {
				n += width
			}
		}
	}
	return n
}

// appendEscaped appends the xml.EscapeText encoding of s to dst.
func appendEscaped(dst, s []byte) []byte {
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRune(s[i:])
		i += width
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if !xmlCharOK(r) || (r == utf8.RuneError && width == 1) {
				esc = "�"
				break
			}
			continue
		}
		dst = append(dst, s[last:i-width]...)
		dst = append(dst, esc...)
		last = i
	}
	return append(dst, s[last:]...)
}

// xmlCharOK mirrors encoding/xml's isInCharacterRange: the XML 1.0
// definition of a legal character.
func xmlCharOK(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// appendUnescaped reverses appendEscaped. ok reports whether every entity
// was one the canonical escaper emits; a foreign entity aborts the fast
// path (the generic decoder handles the full XML entity zoo).
func appendUnescaped(dst, s []byte) (_ []byte, ok bool) {
	for {
		amp := bytes.IndexByte(s, '&')
		if amp < 0 {
			return append(dst, s...), true
		}
		dst = append(dst, s[:amp]...)
		s = s[amp:]
		var rep byte
		var n int
		switch {
		case len(s) >= 5 && s[1] == 'a' && s[2] == 'm' && s[3] == 'p' && s[4] == ';':
			rep, n = '&', 5
		case len(s) >= 4 && s[1] == 'l' && s[2] == 't' && s[3] == ';':
			rep, n = '<', 4
		case len(s) >= 4 && s[1] == 'g' && s[2] == 't' && s[3] == ';':
			rep, n = '>', 4
		case len(s) >= 5 && s[1] == '#' && s[2] == '3' && s[3] == '4' && s[4] == ';':
			rep, n = '"', 5
		case len(s) >= 5 && s[1] == '#' && s[2] == '3' && s[3] == '9' && s[4] == ';':
			rep, n = '\'', 5
		case len(s) >= 5 && s[1] == '#' && s[2] == 'x' && s[4] == ';' && (s[3] == '9' || s[3] == 'A' || s[3] == 'D'):
			switch s[3] {
			case '9':
				rep = '\t'
			case 'A':
				rep = '\n'
			default:
				rep = '\r'
			}
			n = 5
		default:
			return dst, false
		}
		dst = append(dst, rep)
		s = s[n:]
	}
}

// scratchPool holds unescape buffers; reports churn through here at ingest
// rate, so the capacity warms up to the largest report seen and stays.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// textUntilTag returns the bytes before the next '<' and the rest starting
// at that '<'. Escaped canonical text cannot contain '<', so the first
// occurrence always opens the following tag.
func textUntilTag(s []byte) (text, rest []byte, ok bool) {
	lt := bytes.IndexByte(s, '<')
	if lt < 0 {
		return nil, nil, false
	}
	return s[:lt], s[lt:], true
}

// decodeFast decodes an envelope in the exact canonical layout Encode
// produces. ok=false means "not canonical", not "invalid".
func decodeFast(data []byte) (*Envelope, bool) {
	switch {
	case bytes.HasPrefix(data, []byte(bodyPrefix)):
		rest := data[len(bodyPrefix):]
		addr, rest, ok := textUntilTag(rest)
		if !ok || !bytes.HasPrefix(rest, []byte(bodyMid)) {
			return nil, false
		}
		escReport, rest, ok := textUntilTag(rest[len(bodyMid):])
		if !ok || !bytes.Equal(rest, []byte(bodySuffix)) {
			return nil, false
		}
		id, ok := parseAddr(addr)
		if !ok {
			return nil, false
		}
		scratch := scratchPool.Get().(*[]byte)
		buf, ok := appendUnescaped((*scratch)[:0], escReport)
		*scratch = buf[:0]
		if !ok {
			scratchPool.Put(scratch)
			return nil, false
		}
		report := make([]byte, len(buf))
		copy(report, buf)
		scratchPool.Put(scratch)
		return &Envelope{Mode: Body, Branch: id, Report: report}, true

	case bytes.HasPrefix(data, []byte(attachPrefix)):
		rest := data[len(attachPrefix):]
		addr, rest, ok := textUntilTag(rest)
		if !ok || !bytes.HasPrefix(rest, []byte(attachMid)) {
			return nil, false
		}
		rest = rest[len(attachMid):]
		quote := bytes.IndexByte(rest, '"')
		if quote < 0 || !bytes.HasPrefix(rest[quote:], []byte(attachSuffix)) {
			return nil, false
		}
		length, err := strconv.Atoi(string(rest[:quote]))
		if err != nil || length < 0 {
			return nil, false
		}
		payload := rest[quote+len(attachSuffix):]
		if len(payload) < length {
			return nil, false // truncated: let the generic path report it
		}
		id, ok := parseAddr(addr)
		if !ok {
			return nil, false
		}
		return &Envelope{Mode: Attachment, Branch: id, Report: payload[:length]}, true
	}
	return nil, false
}

// parseAddr unescapes a canonical address and parses it.
func parseAddr(escaped []byte) (branch.ID, bool) {
	scratch := scratchPool.Get().(*[]byte)
	buf, ok := appendUnescaped((*scratch)[:0], escaped)
	s := string(buf)
	*scratch = buf[:0]
	scratchPool.Put(scratch)
	if !ok {
		return branch.ID{}, false
	}
	id, err := branch.Parse(s)
	if err != nil {
		return branch.ID{}, false
	}
	return id, true
}

// addressFast peeks the address of a canonical envelope in either mode,
// returning the unescaped identifier text.
func addressFast(data []byte) (string, bool) {
	var rest []byte
	switch {
	case bytes.HasPrefix(data, []byte(bodyPrefix)):
		rest = data[len(bodyPrefix):]
	case bytes.HasPrefix(data, []byte(attachPrefix)):
		rest = data[len(attachPrefix):]
	default:
		return "", false
	}
	addr, rest, ok := textUntilTag(rest)
	if !ok || !bytes.HasPrefix(rest, []byte("</address>")) {
		return "", false
	}
	scratch := scratchPool.Get().(*[]byte)
	buf, ok := appendUnescaped((*scratch)[:0], addr)
	s := string(buf)
	*scratch = buf[:0]
	scratchPool.Put(scratch)
	if !ok {
		return "", false
	}
	return s, true
}
