// Package envelope implements the XML envelope the centralized controller
// wraps around each report before forwarding it to the depot (paper Section
// 3.2.1): "It then creates a XML envelope, where the content of the
// envelope is the report and the envelope address is the branch identifier."
//
// Two encodings are provided:
//
//   - Body mode reproduces the deployed system (reports carried inside the
//     SOAP body): the report XML is embedded as escaped character data, so
//     decoding must scan and unescape the entire payload. This is the cost
//     Section 5.2.2 measures — "it takes almost 3 seconds to unpack the
//     SOAP envelope" for the largest reports.
//
//   - Attachment mode implements the paper's proposed fix ("the reports
//     will be sent as SOAP attachment rather than in the body of the SOAP
//     envelope in order to speed up the unpacking process"): a small XML
//     header followed by the raw report bytes, decoded in O(1).
package envelope

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strconv"

	"inca/internal/branch"
)

// Mode selects the encoding.
type Mode int

// Encoding modes.
const (
	// Body embeds the report as escaped character data (deployed system).
	Body Mode = iota
	// Attachment appends the raw report after a fixed-size header
	// (the paper's planned improvement).
	Attachment
)

// String names the mode.
func (m Mode) String() string {
	if m == Attachment {
		return "attachment"
	}
	return "body"
}

// Envelope is a decoded envelope: the address (branch identifier) plus the
// report payload.
type Envelope struct {
	Mode   Mode
	Branch branch.ID
	Report []byte
}

// Canonical layout pieces shared by the encoder and the decode fast path.
const (
	bodyPrefix   = `<envelope mode="body"><address>`
	bodyMid      = `</address><report>`
	bodySuffix   = `</report></envelope>`
	attachPrefix = `<envelope mode="attachment"><address>`
	attachMid    = `</address><attachment length="`
	attachSuffix = "\"/></envelope>\n"
)

// Encode wraps report under the given address. The result is built in one
// exact-size allocation: a counting pass prices the escaping, then the
// preallocated escaper appends without the per-rune writer indirection of
// xml.EscapeText — the allocation churn this saves dominates the body-mode
// ingest profile (Figure 9's unpack curve has an encode twin on the
// controller side).
func Encode(mode Mode, id branch.ID, reportXML []byte) ([]byte, error) {
	addr := []byte(id.String())
	switch mode {
	case Body:
		n := len(bodyPrefix) + escapedLen(addr) + len(bodyMid) +
			escapedLen(reportXML) + len(bodySuffix)
		out := make([]byte, 0, n)
		out = append(out, bodyPrefix...)
		out = appendEscaped(out, addr)
		out = append(out, bodyMid...)
		// The expensive part the paper measured: the whole report is
		// escaped into the body.
		out = appendEscaped(out, reportXML)
		out = append(out, bodySuffix...)
		return out, nil
	case Attachment:
		length := strconv.Itoa(len(reportXML))
		n := len(attachPrefix) + escapedLen(addr) + len(attachMid) +
			len(length) + len(attachSuffix) + len(reportXML)
		out := make([]byte, 0, n)
		out = append(out, attachPrefix...)
		out = appendEscaped(out, addr)
		out = append(out, attachMid...)
		out = append(out, length...)
		out = append(out, attachSuffix...)
		out = append(out, reportXML...)
		return out, nil
	default:
		return nil, fmt.Errorf("envelope: unknown mode %d", mode)
	}
}

// Decode parses an envelope in either mode (auto-detected). Envelopes in
// this package's canonical layout take a byte-level fast path with pooled
// scratch buffers; anything else falls back to the generic XML decoder.
func Decode(data []byte) (*Envelope, error) {
	if env, ok := decodeFast(data); ok {
		return env, nil
	}
	return decodeGeneric(data)
}

func decodeGeneric(data []byte) (*Envelope, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var env Envelope
	// Read the root element.
	root, err := nextStart(dec)
	if err != nil {
		return nil, fmt.Errorf("envelope: no root element: %w", err)
	}
	if root.Name.Local != "envelope" {
		return nil, fmt.Errorf("envelope: root element %q", root.Name.Local)
	}
	mode := Body
	for _, a := range root.Attr {
		if a.Name.Local == "mode" && a.Value == "attachment" {
			mode = Attachment
		}
	}
	env.Mode = mode
	attachLen := -1
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("envelope: truncated: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "address":
				s, err := collectText(dec)
				if err != nil {
					return nil, err
				}
				id, err := branch.Parse(s)
				if err != nil {
					return nil, fmt.Errorf("envelope: bad address: %w", err)
				}
				env.Branch = id
			case "report":
				if mode != Body {
					return nil, fmt.Errorf("envelope: report element in attachment mode")
				}
				s, err := collectText(dec)
				if err != nil {
					return nil, err
				}
				env.Report = []byte(s)
			case "attachment":
				if mode != Attachment {
					return nil, fmt.Errorf("envelope: attachment element in body mode")
				}
				for _, a := range t.Attr {
					if a.Name.Local == "length" {
						n, err := strconv.Atoi(a.Value)
						if err != nil || n < 0 {
							return nil, fmt.Errorf("envelope: bad attachment length %q", a.Value)
						}
						attachLen = n
					}
				}
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			default:
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if t.Name.Local != "envelope" {
				continue
			}
			if mode == Attachment {
				if attachLen < 0 {
					return nil, fmt.Errorf("envelope: attachment mode without attachment element")
				}
				// The raw payload follows the header line.
				off := int(dec.InputOffset())
				// Skip the newline separator.
				if off < len(data) && data[off] == '\n' {
					off++
				}
				if off+attachLen > len(data) {
					return nil, fmt.Errorf("envelope: attachment truncated (%d of %d bytes)", len(data)-off, attachLen)
				}
				env.Report = data[off : off+attachLen]
			}
			if env.Report == nil {
				return nil, fmt.Errorf("envelope: missing report payload")
			}
			return &env, nil
		}
	}
}

// Address extracts just the branch identifier from a serialized envelope
// without unpacking the report payload — the cheap routing peek a
// distributed depot front end needs (attachment-mode envelopes keep the
// address in a small fixed-size header, so this is O(header) there).
// Canonical envelopes answer from the byte-level fast path in either mode.
func Address(data []byte) (branch.ID, error) {
	if id, ok := addressFast(data); ok {
		return branch.Parse(id)
	}
	return addressGeneric(data)
}

func addressGeneric(data []byte) (branch.ID, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	root, err := nextStart(dec)
	if err != nil {
		return branch.ID{}, fmt.Errorf("envelope: no root element: %w", err)
	}
	if root.Name.Local != "envelope" {
		return branch.ID{}, fmt.Errorf("envelope: root element %q", root.Name.Local)
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return branch.ID{}, fmt.Errorf("envelope: no address element: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "address" {
				s, err := collectText(dec)
				if err != nil {
					return branch.ID{}, err
				}
				return branch.Parse(s)
			}
			if err := dec.Skip(); err != nil {
				return branch.ID{}, err
			}
		case xml.EndElement:
			return branch.ID{}, fmt.Errorf("envelope: no address element")
		}
	}
}

func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if s, ok := tok.(xml.StartElement); ok {
			return s, nil
		}
	}
}

func collectText(dec *xml.Decoder) (string, error) {
	var sb bytes.Buffer
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("envelope: unexpected element <%s>", t.Name.Local)
		}
	}
}
