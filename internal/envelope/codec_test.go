package envelope

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"inca/internal/branch"
)

func TestAppendEscapedMatchesStdlib(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("plain text"),
		[]byte(`<a href="x">&'quoted'</a>`),
		[]byte("tab\there nl\nhere cr\rhere"),
		[]byte("unicode é ☃ 中文"),
		[]byte("invalid \xff byte"),
		[]byte("control \x01 char"),
		{0xef, 0xbf, 0xbd}, // literal U+FFFD
	}
	for _, c := range cases {
		var want bytes.Buffer
		if err := xml.EscapeText(&want, c); err != nil {
			t.Fatal(err)
		}
		got := appendEscaped(nil, c)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("appendEscaped(%q) = %q, want %q", c, got, want.Bytes())
		}
		if n := escapedLen(c); n != len(got) {
			t.Errorf("escapedLen(%q) = %d, want %d", c, n, len(got))
		}
	}
}

func TestAppendEscapedMatchesStdlibProperty(t *testing.T) {
	f := func(s []byte) bool {
		var want bytes.Buffer
		if err := xml.EscapeText(&want, s); err != nil {
			return true // stdlib refused; nothing to compare
		}
		got := appendEscaped(nil, s)
		return bytes.Equal(got, want.Bytes()) && escapedLen(s) == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeInvertsEscape(t *testing.T) {
	f := func(s []byte) bool {
		if !bytes.Equal(appendEscaped(nil, s), s) {
			// Escaping changed the content; only round-trip inputs whose
			// escape is lossless (no invalid-rune replacement).
			var buf bytes.Buffer
			xml.EscapeText(&buf, s)
			back, ok := appendUnescaped(nil, buf.Bytes())
			if !ok {
				return false
			}
			// The escaper may have replaced invalid runes; re-escape to
			// compare canonical forms.
			return bytes.Equal(appendEscaped(nil, back), buf.Bytes())
		}
		back, ok := appendUnescaped(nil, s)
		return ok && bytes.Equal(back, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeRejectsForeignEntities(t *testing.T) {
	for _, s := range []string{"&quot;", "&apos;", "&#65;", "&unknown;", "&", "&am"} {
		if _, ok := appendUnescaped(nil, []byte(s)); ok {
			t.Errorf("appendUnescaped accepted %q", s)
		}
	}
}

func TestDecodeFastMatchesGeneric(t *testing.T) {
	payloads := [][]byte{
		[]byte("<r/>"),
		[]byte("<r><v>1 &lt; 2 &amp; 3</v></r>"),
		[]byte("<r>quotes \" and ' and tabs\t</r>"),
		[]byte("<r>unicode é ☃</r>"),
	}
	for _, mode := range []Mode{Body, Attachment} {
		for _, p := range payloads {
			data, err := Encode(mode, testID, p)
			if err != nil {
				t.Fatal(err)
			}
			fast, ok := decodeFast(data)
			if !ok {
				t.Fatalf("%s: canonical envelope missed the fast path: %s", mode, data)
			}
			gen, err := decodeGeneric(data)
			if err != nil {
				t.Fatalf("%s: generic decode: %v", mode, err)
			}
			if fast.Mode != gen.Mode || !fast.Branch.Equal(gen.Branch) || !bytes.Equal(fast.Report, gen.Report) {
				t.Fatalf("%s: fast %+v != generic %+v", mode, fast, gen)
			}
		}
	}
}

func TestDecodeFallsBackOnForeignEnvelopes(t *testing.T) {
	// Whitespace, reordered attributes, foreign entities: the fast path
	// must decline and the generic decoder must still answer.
	foreign := []string{
		`<envelope mode="body"> <address>a=1</address><report>&#65;</report></envelope>`,
		"<envelope mode=\"body\"><address>a=1</address><report>x</report></envelope>\n",
		`<envelope mode="body"><address>a=1</address><report>r &quot;q&quot;</report></envelope>`,
	}
	for _, s := range foreign {
		if _, ok := decodeFast([]byte(s)); ok {
			t.Errorf("fast path claimed foreign envelope %q", s)
		}
		if _, err := Decode([]byte(s)); err != nil {
			t.Errorf("Decode rejected foreign envelope %q: %v", s, err)
		}
	}
}

func TestAddressFastMatchesGeneric(t *testing.T) {
	ids := []branch.ID{
		testID,
		branch.MustParse("a=1"),
		{},
	}
	for _, mode := range []Mode{Body, Attachment} {
		for _, id := range ids {
			data, err := Encode(mode, id, []byte("<r/>"))
			if err != nil {
				t.Fatal(err)
			}
			s, ok := addressFast(data)
			if !ok {
				t.Fatalf("%s: canonical envelope missed the address fast path", mode)
			}
			fast, err := branch.Parse(s)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := addressGeneric(data)
			if err != nil {
				t.Fatal(err)
			}
			if !fast.Equal(gen) {
				t.Fatalf("%s: fast %s != generic %s", mode, fast, gen)
			}
		}
	}
}

func TestDecodeConcurrentPoolSafety(t *testing.T) {
	// Hammer Decode from many goroutines with distinct payloads; pooled
	// scratch reuse must never bleed bytes between envelopes.
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				payload := []byte(fmt.Sprintf("<r><g>%d</g><i>%d</i><pad>%d</pad></r>", g, i, r.Int63()))
				mode := Body
				if i%2 == 0 {
					mode = Attachment
				}
				data, err := Encode(mode, testID, payload)
				if err != nil {
					t.Error(err)
					return
				}
				env, err := Decode(data)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(env.Report, payload) {
					t.Errorf("g%d i%d: payload corrupted: %s", g, i, env.Report)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkEncodeBody(b *testing.B) {
	payload := bytes.Repeat([]byte("<x>data &amp; more</x>"), 2000)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(Body, testID, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBodyFastPath(b *testing.B) {
	payload := bytes.Repeat([]byte("<x>data &amp; more</x>"), 2000)
	data, err := Encode(Body, testID, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(env.Report) != len(payload) {
			b.Fatal("payload lost")
		}
	}
}
